#include "src/dp/allocation.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"
#include "src/dp/bounds.h"

namespace incshrink {

double ExpectedDummyRows(double sensitivity, double eps, uint64_t releases) {
  INCSHRINK_CHECK_GT(eps, 0.0);
  // E[max(0, Lap(b/eps))] = b / (2 eps) per release.
  return static_cast<double>(releases) * sensitivity / (2.0 * eps);
}

namespace {

double Clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

}  // namespace

double FilterEfficiency(const OperatorSpec& op, double eps) {
  if (op.input_rows1 == 0) return 1.0;
  const double y1 = ExpectedDummyRows(op.sensitivity, eps, op.releases);
  return Clamp01(1.0 - y1 / static_cast<double>(op.input_rows1));
}

double JoinEfficiency(const OperatorSpec& op, double eps) {
  const uint64_t n = op.input_rows1 + op.input_rows2;
  if (n == 0) return 1.0;
  // Both inputs are resized under the same slice; Y2 uses the same model.
  const double y = 2.0 * ExpectedDummyRows(op.sensitivity, eps, op.releases);
  return Clamp01(1.0 - y / static_cast<double>(n));
}

double QueryEfficiency(const std::vector<OperatorSpec>& ops,
                       const std::vector<double>& allocation) {
  INCSHRINK_CHECK_EQ(ops.size(), allocation.size());
  uint64_t total_out = 0;
  for (const OperatorSpec& op : ops) total_out += op.output_rows;
  if (total_out == 0) return 0.0;
  double eq = 0;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (allocation[i] <= 0) return 0.0;  // an unfunded operator stalls Q
    const double e = ops[i].kind == OperatorSpec::Kind::kFilter
                         ? FilterEfficiency(ops[i], allocation[i])
                         : JoinEfficiency(ops[i], allocation[i]);
    eq += static_cast<double>(ops[i].output_rows) /
          static_cast<double>(total_out) * e;
  }
  return eq;
}

double OperatorLogicalGap(const OperatorSpec& op, double eps, double beta) {
  if (eps <= 0) return std::numeric_limits<double>::infinity();
  return TimerDeferredBound(op.sensitivity, eps, op.releases, beta);
}

AllocationResult OptimizePrivacyAllocation(
    const std::vector<OperatorSpec>& ops, double eps_total, double lg_total,
    double beta) {
  INCSHRINK_CHECK_GT(eps_total, 0.0);
  AllocationResult result;
  const size_t l = ops.size();
  if (l == 0) return result;

  std::vector<double> alloc(l, eps_total / static_cast<double>(l));
  auto total_gap = [&](const std::vector<double>& a) {
    double g = 0;
    for (size_t i = 0; i < l; ++i) g += OperatorLogicalGap(ops[i], a[i], beta);
    return g;
  };

  // Phase 1: restore logical-gap feasibility by shifting budget toward the
  // operators with the largest gap (their bound decreases as 1/eps).
  for (int guard = 0; guard < 1000 && total_gap(alloc) > lg_total; ++guard) {
    size_t worst = 0, best = 0;
    double worst_gap = -1, best_gap = std::numeric_limits<double>::max();
    for (size_t i = 0; i < l; ++i) {
      const double g = OperatorLogicalGap(ops[i], alloc[i], beta);
      if (g > worst_gap) {
        worst_gap = g;
        worst = i;
      }
      if (g < best_gap) {
        best_gap = g;
        best = i;
      }
    }
    if (worst == best) break;
    const double delta = alloc[best] * 0.05;
    if (delta < 1e-9) break;
    alloc[best] -= delta;
    alloc[worst] += delta;
  }
  if (total_gap(alloc) > lg_total) {
    // Even the most favorable shift cannot satisfy the gap budget.
    result.eps = alloc;
    result.efficiency = QueryEfficiency(ops, alloc);
    result.feasible = false;
    return result;
  }

  // Phase 2: coordinate-exchange ascent on E_Q over the simplex, rejecting
  // moves that violate the gap budget.
  double best_eq = QueryEfficiency(ops, alloc);
  bool improved = true;
  for (int pass = 0; pass < 200 && improved; ++pass) {
    improved = false;
    const double step = eps_total * 0.01;
    for (size_t from = 0; from < l; ++from) {
      for (size_t to = 0; to < l; ++to) {
        if (from == to || alloc[from] <= step) continue;
        std::vector<double> cand = alloc;
        cand[from] -= step;
        cand[to] += step;
        if (total_gap(cand) > lg_total) continue;
        const double eq = QueryEfficiency(ops, cand);
        if (eq > best_eq + 1e-12) {
          best_eq = eq;
          alloc = cand;
          improved = true;
        }
      }
    }
  }

  result.eps = alloc;
  result.efficiency = best_eq;
  result.feasible = true;
  return result;
}

}  // namespace incshrink
