#pragma once

#include <cstdint>
#include <vector>

namespace incshrink {

/// \brief Operator-level privacy budget allocation (paper Appendix D.2).
///
/// In the multi-level "Transform-and-Shrink" design every relational
/// operator runs its own IncShrink instance with a slice eps_i of the total
/// privacy budget. Small slices inject more dummy tuples into that
/// operator's output (hurting downstream efficiency); the appendix defines
/// per-operator efficiency metrics (Definitions 6-8) and the constrained
/// optimization (Eq. 15) that maximizes overall query efficiency subject to
/// the privacy and logical-gap budgets.

/// One relational operator of the query plan.
struct OperatorSpec {
  enum class Kind : uint8_t { kFilter, kJoin };
  Kind kind = Kind::kFilter;
  /// Real input cardinalities (n1, and n2 for joins).
  uint64_t input_rows1 = 0;
  uint64_t input_rows2 = 0;
  /// Output cardinality |O_i| used for the Definition-8 weighting.
  uint64_t output_rows = 0;
  /// Sensitivity (contribution bound b) of the DP releases feeding this
  /// operator's inputs.
  double sensitivity = 1.0;
  /// Number of DP releases k the upstream Shrink instance performs.
  uint64_t releases = 1;
};

/// Expected dummy tuples Y(eps) in an operator input fed by `releases`
/// Laplace(b/eps) resizings: each release contributes E[max(0, Lap)] =
/// b/(2 eps) expected dummies.
double ExpectedDummyRows(double sensitivity, double eps, uint64_t releases);

/// Definition 6: E(P) = 1 - Y1(eps1)/n1 (clamped to [0, 1]).
double FilterEfficiency(const OperatorSpec& op, double eps);

/// Definition 7: E(P) = 1 - (Y1 + Y2)/(n1 + n2) (clamped to [0, 1]).
double JoinEfficiency(const OperatorSpec& op, double eps);

/// Definition 8: E_Q(P) = sum_i |O_i|/|O_total| * E_i(P).
double QueryEfficiency(const std::vector<OperatorSpec>& ops,
                       const std::vector<double>& allocation);

/// Per-operator logical-gap bound at its eps slice (Theorem 4's deferred
/// data bound with k releases at confidence 1 - beta).
double OperatorLogicalGap(const OperatorSpec& op, double eps, double beta);

struct AllocationResult {
  std::vector<double> eps;   ///< per-operator slices, summing to eps_total
  double efficiency = 0;     ///< E_Q at the returned allocation
  bool feasible = false;     ///< whether the LG constraint could be met
};

/// Solves Eq. 15 by projected coordinate ascent on the budget simplex:
///   max E_Q(P)  s.t.  sum eps_i <= eps_total,
///                     sum LG_i(eps_i) <= lg_total,  eps_i >= 0.
/// Deterministic and exact enough for the small operator counts (<= ~6) of
/// realistic view definitions.
AllocationResult OptimizePrivacyAllocation(
    const std::vector<OperatorSpec>& ops, double eps_total, double lg_total,
    double beta = 0.05);

}  // namespace incshrink
