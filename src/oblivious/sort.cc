#include "src/oblivious/sort.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/oblivious/shuffle.h"

namespace incshrink {

namespace {

/// Visits every compare-exchange (a, b) of one layer — one (p, k) pass —
/// of Batcher's odd-even merge network for n rows, in scalar execution
/// order. This is the single definition of the network's index math
/// (including the `a / (p*2) == b / (p*2)` block guard): the scalar
/// reference path, the layer cursor and the serial fast path all funnel
/// through it, so the batched/scalar bit-equality contract has exactly one
/// loop nest to keep correct.
template <typename Visitor>
void VisitLayerPairs(size_t n, size_t p, size_t k, Visitor&& visit) {
  for (size_t j = k % p; j + k < n; j += 2 * k) {
    for (size_t i = 0; i < k; ++i) {
      const size_t a = i + j;
      const size_t b = i + j + k;
      if (b >= n) break;
      if (a / (p * 2) == b / (p * 2)) visit(a, b);
    }
  }
}

/// Steps the (p, k) layer state machine to the next pass; returns false
/// when the network (for n rows) is exhausted. Layer order: (1,1), (2,2),
/// (2,1), (4,4), (4,2), (4,1), ...
bool AdvanceLayer(size_t n, size_t* p, size_t* k) {
  if (*k > 1) {
    *k >>= 1;
    return true;
  }
  *p <<= 1;
  if (*p >= n) return false;
  *k = *p;
  return true;
}

/// Visits every compare-exchange of the whole network, in execution order
/// (scalar reference order).
template <typename Visitor>
void ForEachCompareExchange(size_t n, Visitor&& visit) {
  if (n < 2) return;
  size_t p = 1;
  size_t k = 1;
  do {
    VisitLayerPairs(n, p, k, visit);
  } while (AdvanceLayer(n, &p, &k));
}

/// Enumerates the network one layer at a time. Within a layer every row
/// index appears in at most one pair: the j-blocks cover disjoint index
/// windows [j, j + 2k), so a layer is exactly the unit that can be
/// submitted as one batched compare-exchange call. Pairs are emitted in
/// the scalar visit order, which is what keeps the batched resharing-mask
/// sequence aligned with the per-op path.
class LayerCursor {
 public:
  explicit LayerCursor(size_t n) : n_(n), done_(n < 2) {}

  /// Fills `out` with the next layer's pairs; returns false when the
  /// network is exhausted. Layers are never empty for n >= 2 except
  /// possibly at tail guards; empty layers are emitted as empty vectors.
  bool Next(std::vector<RowPair>* out) {
    out->clear();
    if (done_) return false;
    VisitLayerPairs(n_, p_, k_, [out](size_t a, size_t b) {
      out->push_back({static_cast<uint32_t>(a), static_cast<uint32_t>(b)});
    });
    done_ = !AdvanceLayer(n_, &p_, &k_);
    return true;
  }

 private:
  size_t n_;
  size_t p_ = 1;
  size_t k_ = 1;
  bool done_;
};

/// Per-job state of one fused multi-sort submission.
struct JobState {
  explicit JobState(const SortJob& j)
      : job(j), cursor(j.rows->size()), mask_words(Protocol2PC::
            CompareExchangeMaskWords(j.rows->width())) {}

  SortJob job;
  LayerCursor cursor;
  size_t mask_words;
  std::vector<RowPair> pairs;  ///< current layer, scalar visit order
  std::vector<Word> masks;     ///< pre-drawn reshares for the current layer
  bool active = true;
};

/// Applies sites [begin, end) of `state`'s current layer (pure kernels over
/// pre-drawn masks; sites touch disjoint rows, so any split is race-free
/// and bit-identical).
void ApplyJobRange(const JobState& state, size_t begin, size_t end) {
  const SortJob& j = state.job;
  const Word* masks = state.masks.data();
  if (j.lex) {
    for (size_t p = begin; p < end; ++p) {
      j.proto->ApplyCompareExchangeLex(j.rows, state.pairs[p].a,
                                       state.pairs[p].b, j.key_col,
                                       j.minor_col, j.ascending,
                                       masks + p * state.mask_words);
    }
  } else {
    for (size_t p = begin; p < end; ++p) {
      j.proto->ApplyCompareExchange(j.rows, state.pairs[p].a,
                                    state.pairs[p].b, j.key_col, j.ascending,
                                    masks + p * state.mask_words);
    }
  }
}

/// Serial-round variant: runs the inline-draw site kernels — the per-proto
/// draw sequence is identical (site order == scalar order), but the masks
/// never leave registers.
void ApplyJobSitesFused(JobState* state) {
  const SortJob& j = state->job;
  if (j.lex) {
    for (const RowPair& pr : state->pairs) {
      j.proto->CompareExchangeLexSite(j.rows, pr.a, pr.b, j.key_col,
                                      j.minor_col, j.ascending);
    }
  } else {
    for (const RowPair& pr : state->pairs) {
      j.proto->CompareExchangeSite(j.rows, pr.a, pr.b, j.key_col,
                                   j.ascending);
    }
  }
}

/// Single-job fully-serial fast path: walks the network's (p, k) layers
/// with inline index math — no pair materialization, no mask buffer — and
/// charges each layer's aggregate cost once. The draw sequence is the site
/// kernels' (== scalar order); accounting touches no protocol randomness,
/// so charging after a layer's sites instead of before commits identical
/// state. This is the shape of the hot loop in an unsharded deployment.
void SerialSortSingle(const SortJob& job) {
  const size_t n = job.rows->size();
  if (n < 2) return;
  Protocol2PC* proto = job.proto;
  SharedRows* rows = job.rows;
  const size_t width = rows->width();
  size_t p = 1;
  size_t k = 1;
  do {
    uint64_t ops = 0;
    if (job.lex) {
      VisitLayerPairs(n, p, k, [&](size_t a, size_t b) {
        proto->CompareExchangeLexSite(rows, a, b, job.key_col, job.minor_col,
                                      job.ascending);
        ++ops;
      });
    } else {
      VisitLayerPairs(n, p, k, [&](size_t a, size_t b) {
        proto->CompareExchangeSite(rows, a, b, job.key_col, job.ascending);
        ++ops;
      });
    }
    if (ops > 0) proto->AccountCompareExchangeBatch(ops, width, job.lex);
  } while (AdvanceLayer(n, &p, &k));
}

}  // namespace

void ObliviousSortBatch(SortJob* jobs, size_t num_jobs,
                        const BatchExec& exec) {
  if (num_jobs == 0) return;
  // Policy dispatch: shuffle-then-sort jobs run through the permutation-
  // network scheduler. The two groups run on disjoint protocol sets (jobs
  // of a batch are on pairwise-distinct protocols), so executing them as
  // two fused submissions is bit-identical per job to any mixed schedule.
  bool any_shuffle = false;
  for (size_t i = 0; i < num_jobs; ++i) {
    any_shuffle =
        any_shuffle || jobs[i].algorithm == SortAlgorithm::kShuffleSort;
  }
  if (any_shuffle) {
    for (size_t i = 0; i < num_jobs; ++i) {
      INCSHRINK_CHECK(jobs[i].proto != nullptr && jobs[i].rows != nullptr);
      for (size_t j = i + 1; j < num_jobs; ++j) {
        INCSHRINK_CHECK(jobs[i].proto != jobs[j].proto);
      }
    }
    std::vector<SortJob> shuffle_group;
    std::vector<SortJob> batcher_group;
    for (size_t i = 0; i < num_jobs; ++i) {
      (jobs[i].algorithm == SortAlgorithm::kShuffleSort ? shuffle_group
                                                        : batcher_group)
          .push_back(jobs[i]);
    }
    ObliviousShuffleSortBatch(shuffle_group.data(), shuffle_group.size(),
                              exec);
    if (!batcher_group.empty()) {
      ObliviousSortBatch(batcher_group.data(), batcher_group.size(), exec);
    }
    return;
  }
  if (num_jobs == 1) {
    const SortJob& job = jobs[0];
    INCSHRINK_CHECK(job.proto != nullptr && job.rows != nullptr);
    if (exec.pool == nullptr || exec.pool->num_threads() <= 1) {
      SerialSortSingle(job);
      return;
    }
    // Pooled single sort: one CompareExchangeRows[Lex]Batch submission per
    // layer — the batch APIs, with their pre-draw + chunked pooled apply,
    // ARE this hot path. (The multi-job loop below pools chunks across
    // jobs instead, which one job cannot benefit from.)
    LayerCursor cursor(job.rows->size());
    std::vector<RowPair> pairs;
    while (cursor.Next(&pairs)) {
      if (pairs.empty()) continue;
      if (job.lex) {
        job.proto->CompareExchangeRowsLexBatch(job.rows, pairs.data(),
                                               pairs.size(), job.key_col,
                                               job.minor_col, job.ascending,
                                               exec);
      } else {
        job.proto->CompareExchangeRowsBatch(job.rows, pairs.data(),
                                            pairs.size(), job.key_col,
                                            job.ascending, exec);
      }
    }
    return;
  }
  // Each job owns its protocol's resharing stream for the whole submission;
  // two jobs on one protocol would interleave their mask draws and diverge
  // from the per-job scalar order.
  for (size_t i = 0; i < num_jobs; ++i) {
    INCSHRINK_CHECK(jobs[i].proto != nullptr && jobs[i].rows != nullptr);
    for (size_t j = i + 1; j < num_jobs; ++j) {
      INCSHRINK_CHECK(jobs[i].proto != jobs[j].proto);
    }
  }

  std::vector<JobState> states;
  states.reserve(num_jobs);
  for (size_t i = 0; i < num_jobs; ++i) states.emplace_back(jobs[i]);

  // Lockstep layer rounds: round r runs layer r of every live network.
  // Same-shaped jobs share every round; differently sized jobs simply drop
  // out as their (shorter) networks finish.
  while (true) {
    size_t total_sites = 0;
    bool any_active = false;
    // Phase 1 — serial, in job index order: emit the layer and charge its
    // aggregate cost (one trace event per job per layer).
    for (JobState& s : states) {
      if (!s.active) continue;
      s.active = s.cursor.Next(&s.pairs);
      if (!s.active || s.pairs.empty()) continue;
      any_active = true;
      s.job.proto->AccountCompareExchangeBatch(
          s.pairs.size(), s.job.rows->width(), s.job.lex);
      total_sites += s.pairs.size();
    }
    if (!any_active) {
      bool live = false;
      for (const JobState& s : states) live = live || s.active;
      if (!live) break;
      continue;  // a round of empty layers; keep draining the cursors
    }

    // Phase 2 — apply the round's sites, pooled across all jobs when the
    // combined layer is wide enough. Serial rounds fuse mask drawing with
    // the apply (site by site, the exact scalar sequence) so masks stay
    // L1-resident; pooled rounds must pre-draw each job's masks in scalar
    // site order because the apply order is scheduling-dependent.
    if (exec.Serial(total_sites)) {
      for (JobState& s : states) {
        if (s.pairs.empty() || !s.active) continue;
        ApplyJobSitesFused(&s);
      }
      continue;
    }
    for (JobState& s : states) {
      if (s.pairs.empty() || !s.active) continue;
      s.masks.resize(s.pairs.size() * s.mask_words);
      s.job.proto->DrawReshareMasks(s.masks.size(), s.masks.data());
    }
    struct Chunk {
      const JobState* state;
      size_t begin;
      size_t end;
    };
    const size_t chunk_size =
        BatchChunkSize(total_sites, exec.pool->num_threads());
    std::vector<Chunk> chunks;
    for (const JobState& s : states) {
      if (!s.active || s.pairs.empty()) continue;
      for (size_t b = 0; b < s.pairs.size(); b += chunk_size) {
        chunks.push_back({&s, b, std::min(s.pairs.size(), b + chunk_size)});
      }
    }
    exec.pool->ParallelFor(chunks.size(), [&](size_t c) {
      ApplyJobRange(*chunks[c].state, chunks[c].begin, chunks[c].end);
    });
  }
}

const char* SortAlgorithmName(SortAlgorithm a) {
  switch (a) {
    case SortAlgorithm::kBatcher:
      return "batcher";
    case SortAlgorithm::kShuffleSort:
      return "shuffle_sort";
  }
  return "unknown";
}

void ObliviousSort(Protocol2PC* proto, SharedRows* rows, size_t key_col,
                   bool ascending, const BatchExec& exec) {
  SortJob job{proto, rows, key_col, 0, /*lex=*/false, ascending};
  ObliviousSortBatch(&job, 1, exec);
}

void ObliviousSortLex(Protocol2PC* proto, SharedRows* rows, size_t major_col,
                      size_t minor_col, bool ascending,
                      const BatchExec& exec) {
  SortJob job{proto, rows, major_col, minor_col, /*lex=*/true, ascending};
  ObliviousSortBatch(&job, 1, exec);
}

void ObliviousSort(Protocol2PC* proto, SharedRows* rows, size_t key_col,
                   bool ascending) {
  ObliviousSort(proto, rows, key_col, ascending, BatchExec{});
}

void ObliviousSortLex(Protocol2PC* proto, SharedRows* rows, size_t major_col,
                      size_t minor_col, bool ascending) {
  ObliviousSortLex(proto, rows, major_col, minor_col, ascending, BatchExec{});
}

void ObliviousSortScalar(Protocol2PC* proto, SharedRows* rows, size_t key_col,
                         bool ascending) {
  ForEachCompareExchange(rows->size(), [&](size_t a, size_t b) {
    proto->CompareExchangeRows(rows, a, b, key_col, ascending);
  });
}

void ObliviousSortLexScalar(Protocol2PC* proto, SharedRows* rows,
                            size_t major_col, size_t minor_col,
                            bool ascending) {
  ForEachCompareExchange(rows->size(), [&](size_t a, size_t b) {
    proto->CompareExchangeRowsLex(rows, a, b, major_col, minor_col,
                                  ascending);
  });
}

uint64_t SortNetworkCompareExchanges(size_t n) {
  uint64_t count = 0;
  ForEachCompareExchange(n, [&](size_t, size_t) { ++count; });
  return count;
}

std::vector<uint64_t> SortNetworkLayerSizes(size_t n) {
  std::vector<uint64_t> sizes;
  LayerCursor cursor(n);
  std::vector<RowPair> pairs;
  while (cursor.Next(&pairs)) sizes.push_back(pairs.size());
  return sizes;
}

std::vector<std::vector<RowPair>> SortNetworkLayers(size_t n) {
  std::vector<std::vector<RowPair>> layers;
  LayerCursor cursor(n);
  std::vector<RowPair> pairs;
  while (cursor.Next(&pairs)) layers.push_back(pairs);
  return layers;
}

}  // namespace incshrink
