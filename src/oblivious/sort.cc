#include "src/oblivious/sort.h"

namespace incshrink {

namespace {

/// Visits every compare-exchange (a, b) of Batcher's odd-even merge sorting
/// network for arbitrary n, in execution order.
template <typename Visitor>
void ForEachCompareExchange(size_t n, Visitor&& visit) {
  if (n < 2) return;
  for (size_t p = 1; p < n; p <<= 1) {
    for (size_t k = p; k >= 1; k >>= 1) {
      for (size_t j = k % p; j + k < n; j += 2 * k) {
        for (size_t i = 0; i < k; ++i) {
          const size_t a = i + j;
          const size_t b = i + j + k;
          if (b >= n) break;
          if (a / (p * 2) == b / (p * 2)) visit(a, b);
        }
      }
      if (k == 1) break;
    }
  }
}

}  // namespace

void ObliviousSort(Protocol2PC* proto, SharedRows* rows, size_t key_col,
                   bool ascending) {
  ForEachCompareExchange(rows->size(), [&](size_t a, size_t b) {
    proto->CompareExchangeRows(rows, a, b, key_col, ascending);
  });
}

void ObliviousSortLex(Protocol2PC* proto, SharedRows* rows, size_t major_col,
                      size_t minor_col, bool ascending) {
  ForEachCompareExchange(rows->size(), [&](size_t a, size_t b) {
    proto->CompareExchangeRowsLex(rows, a, b, major_col, minor_col,
                                  ascending);
  });
}

uint64_t SortNetworkCompareExchanges(size_t n) {
  uint64_t count = 0;
  ForEachCompareExchange(n, [&](size_t, size_t) { ++count; });
  return count;
}

}  // namespace incshrink
