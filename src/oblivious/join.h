#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/mpc/protocol.h"
#include "src/secret/shared_rows.h"

namespace incshrink {

/// \brief Parameters of a truncated, windowed equi-join view transformation.
///
/// Both paper workloads are band joins of this shape:
///   Q1: Sales JOIN Returns  ON PID      WHERE ReturnDate - SaleDate  in [0,10]
///   Q2: Allegation JOIN Award ON officer WHERE AwardTime - CaseEnd   in [0,10]
struct JoinSpec {
  /// T2.date - T1.date must lie in [window_lo, window_hi] (inclusive).
  uint32_t window_lo = 0;
  uint32_t window_hi = 10;
  /// If false, the window predicate is skipped (pure equi-join).
  bool use_window = true;
  /// Truncation bound omega: within one operator invocation each input
  /// record contributes to at most `omega` output rows (paper Eq. 3).
  uint32_t omega = 1;
  /// Whether the contribution cap applies to each side. Public relations
  /// (e.g. the CPDB Award table) carry no privacy budget, so their side is
  /// left uncapped.
  bool cap_t1 = true;
  bool cap_t2 = true;
};

/// Per-invocation contribution usage, keyed by record id. One logical
/// Transform invocation may be assembled from several operator calls (new
/// rows vs. each window side); sharing this map across those calls enforces
/// the omega cap per record per *invocation*, which is what the q-stability
/// analysis requires.
using ContributionUsage = std::unordered_map<Word, uint32_t>;

/// \brief Result of a truncated oblivious join.
struct JoinResult {
  /// Exhaustively padded output in view-row format (`kView*` columns). The
  /// row count is a deterministic function of the public input sizes only.
  SharedRows rows;
  /// Number of real view entries among `rows`. This value exists only inside
  /// the protocol (ideal functionality); callers must secret-share it before
  /// it leaves MPC (Transform re-shares it into the cardinality counter).
  uint32_t real_count = 0;
};

/// \brief b-truncated oblivious sort-merge join (paper Example 5.1, Fig. 2).
///
/// Unions the two tables (T1 rows ordered before T2 rows on key ties),
/// obliviously sorts the union by join key with Batcher's network, then
/// linearly scans, emitting exactly `omega` output slots per accessed merged
/// tuple — real joins first, dummy-padded to `omega`. Each record contributes
/// at most `omega` real rows; surplus true joins are truncated (the paper's
/// truncation error source).
///
/// Inputs are source-format rows (`kSrc*` columns); both tables may contain
/// dummy padding rows (valid bit 0), which never join. The output size is
/// omega * (|t1| + |t2|) rows regardless of content.
///
/// `seq` is the cache insertion sequence counter used to build FIFO cache
/// sort keys; it is advanced once per emitted row.
/// `usage` (optional) carries per-record contribution counts across multiple
/// operator calls of the same Transform invocation; pass nullptr for a
/// standalone call.
/// `exec` is the batch execution policy of the internal oblivious sort
/// (scheduling only; results are bit-identical with any pool).
JoinResult TruncatedSortMergeJoin(Protocol2PC* proto, const SharedRows& t1,
                                  const SharedRows& t2, const JoinSpec& spec,
                                  uint64_t* seq,
                                  ContributionUsage* usage = nullptr,
                                  const BatchExec& exec = {});

/// \brief Truncated oblivious nested-loop join (paper Algorithm 4).
///
/// For each outer tuple, joins against every inner tuple, generating a join
/// row only when both tuples still have remaining contribution budget in
/// their `budget_col`; budgets are consumed (obliviously decremented) per
/// generated row. Each per-outer intermediate block is obliviously sorted
/// (real rows first) and truncated to `omega` rows, so the output size is
/// omega * |t1| regardless of content.
///
/// `t1`/`t2` are modified in place: their budget columns are decremented and
/// re-shared, implementing the appendix's per-row budget accounting.
JoinResult TruncatedNestedLoopJoin(Protocol2PC* proto, SharedRows* t1,
                                   SharedRows* t2, size_t budget_col1,
                                   size_t budget_col2, const JoinSpec& spec,
                                   uint64_t* seq);

/// \brief Full (untruncated) oblivious join COUNT — the query operator of
/// the non-materialized (NM) baseline, i.e. the standard SOGDB that re-joins
/// the entire outsourced data for every query.
///
/// Obliviously sorts the union of the two tables and aggregates the number
/// of qualifying pairs inside the circuit, revealing only the final count.
/// Charges the sort network plus an O(n log n) oblivious prefix-aggregation
/// scan. The returned count exists only inside the protocol.
uint32_t ObliviousJoinCountFull(Protocol2PC* proto, const SharedRows& t1,
                                const SharedRows& t2, const JoinSpec& spec,
                                const BatchExec& exec = {});

/// \brief Plaintext reference join with identical semantics (same truncation
/// and ordering rules) used for differential testing and ground truth.
///
/// Returns the number of (t1,t2) pairs a truncation-free join would produce
/// in `untruncated_count` (if non-null).
uint32_t ReferenceTruncatedJoinCount(const std::vector<std::vector<Word>>& t1,
                                     const std::vector<std::vector<Word>>& t2,
                                     const JoinSpec& spec,
                                     uint32_t* untruncated_count);

}  // namespace incshrink
