#pragma once

#include <cstddef>

#include "src/mpc/protocol.h"
#include "src/secret/shared_rows.h"

namespace incshrink {

/// \brief Secure-cache operations (paper Fig. 3 and Section 5.2).
///
/// The secure cache sigma is an exhaustively padded shared array in view-row
/// format. Reads must never reveal which entries are real, so every access
/// first obliviously sorts the whole cache by the cache ordering key (real
/// tuples ahead of dummies, FIFO among real tuples) and then cuts a prefix
/// of *public* length.

/// Oblivious cache read: sorts `cache` and removes its first `read_size`
/// rows, returning them. `read_size` is public (it is the DP-noised batch
/// size released by Shrink); it is clamped to the cache size.
SharedRows ObliviousCacheRead(Protocol2PC* proto, SharedRows* cache,
                              size_t read_size);

/// Post-sort half of ObliviousCacheRead, split out so the sort itself can
/// be fused with other shards'/tenants' sorts in one batch submission:
/// charges the share-transfer cost and cuts the public-size prefix. The
/// caller must have sorted `cache` by the cache key (descending) first.
/// ObliviousCacheRead == ObliviousSort + TakeSortedPrefix, bit for bit.
SharedRows TakeSortedPrefix(Protocol2PC* proto, SharedRows* cache,
                            size_t read_size);

/// Cache flush (Section 5.2.1): sorts the cache, fetches the first
/// `flush_size` rows, and recycles (drops) the remainder — including, with
/// small probability, deferred real tuples. Returns the fetched rows.
SharedRows CacheFlush(Protocol2PC* proto, SharedRows* cache,
                      size_t flush_size);

/// Post-sort half of CacheFlush (fetch the fixed prefix, recycle the rest),
/// for flush sorts executed through a fused batch submission.
SharedRows TakeFlushPrefix(Protocol2PC* proto, SharedRows* cache,
                           size_t flush_size);

/// Obliviously counts real entries (isView == 1) in a view-format table.
/// The result is known only inside the protocol.
uint32_t CountRealInside(Protocol2PC* proto, const SharedRows& rows);

}  // namespace incshrink
