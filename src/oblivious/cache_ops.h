#pragma once

#include <cstddef>

#include "src/mpc/protocol.h"
#include "src/oblivious/sort.h"
#include "src/secret/shared_rows.h"

namespace incshrink {

/// \brief Secure-cache operations (paper Fig. 3 and Section 5.2).
///
/// The secure cache sigma is an exhaustively padded shared array in view-row
/// format. Reads must never reveal which entries are real, so every access
/// first obliviously sorts the whole cache by the cache ordering key (real
/// tuples ahead of dummies, FIFO among real tuples) and then cuts a prefix
/// of *public* length.

/// Oblivious cache read: sorts `cache` and removes its first `read_size`
/// rows, returning them. `read_size` is public (it is the DP-noised batch
/// size released by Shrink); it is clamped to the cache size.
SharedRows ObliviousCacheRead(Protocol2PC* proto, SharedRows* cache,
                              size_t read_size);

/// Policy-dispatching variant: kBatcher runs the odd-even merge network,
/// kShuffleSort the Waksman shuffle-then-sort path (same key order, tie
/// placement re-randomized by the seeded shuffle). The prefix cut is
/// identical either way.
SharedRows ObliviousCacheRead(Protocol2PC* proto, SharedRows* cache,
                              size_t read_size, SortAlgorithm algorithm);

/// Post-sort half of ObliviousCacheRead, split out so the sort itself can
/// be fused with other shards'/tenants' sorts in one batch submission:
/// charges the share-transfer cost and cuts the public-size prefix. The
/// caller must have sorted `cache` by the cache key (descending) first.
/// ObliviousCacheRead == ObliviousSort + TakeSortedPrefix, bit for bit.
SharedRows TakeSortedPrefix(Protocol2PC* proto, SharedRows* cache,
                            size_t read_size);

/// Cache flush (Section 5.2.1): sorts the cache, fetches the first
/// `flush_size` rows, and recycles (drops) the remainder — including, with
/// small probability, deferred real tuples. Returns the fetched rows.
SharedRows CacheFlush(Protocol2PC* proto, SharedRows* cache,
                      size_t flush_size);

/// Policy-dispatching variant. Under kShuffleSort the flush drops the sort
/// entirely: a flush only needs *some* secret permutation (the prefix cut
/// is public-size, and recycling is lossy by design), so a single random
/// Waksman shuffle — ~2x fewer AND gates than even the shuffle-sort path,
/// ~3.7x fewer than Batcher at n = 4096 — randomizes which rows are
/// fetched versus recycled. Under kBatcher this is CacheFlush exactly.
SharedRows CacheFlush(Protocol2PC* proto, SharedRows* cache,
                      size_t flush_size, SortAlgorithm algorithm);

/// Post-sort half of CacheFlush (fetch the fixed prefix, recycle the rest),
/// for flush sorts executed through a fused batch submission.
SharedRows TakeFlushPrefix(Protocol2PC* proto, SharedRows* cache,
                           size_t flush_size);

/// Obliviously counts real entries (isView == 1) in a view-format table.
/// The result is known only inside the protocol.
uint32_t CountRealInside(Protocol2PC* proto, const SharedRows& rows);

}  // namespace incshrink
