#include "src/oblivious/filter.h"

#include "src/common/logging.h"

namespace incshrink {

ObliviousPredicate ObliviousPredicate::True() {
  return ObliviousPredicate{[](const std::vector<Word>&) { return true; }, 0};
}

ObliviousPredicate ObliviousPredicate::ColumnLess(size_t col, Word value) {
  return ObliviousPredicate{
      [col, value](const std::vector<Word>& row) { return row[col] < value; },
      kWordBits};
}

ObliviousPredicate ObliviousPredicate::ColumnGreaterEq(size_t col,
                                                       Word value) {
  return ObliviousPredicate{
      [col, value](const std::vector<Word>& row) { return row[col] >= value; },
      kWordBits};
}

ObliviousPredicate ObliviousPredicate::ColumnEquals(size_t col, Word value) {
  return ObliviousPredicate{
      [col, value](const std::vector<Word>& row) { return row[col] == value; },
      kWordBits};
}

ObliviousPredicate ObliviousPredicate::ColumnBetween(size_t col, Word lo,
                                                     Word hi) {
  return ObliviousPredicate{[col, lo, hi](const std::vector<Word>& row) {
                              return row[col] >= lo && row[col] <= hi;
                            },
                            2 * kWordBits + 1};
}

ObliviousPredicate ObliviousPredicate::AndThen(ObliviousPredicate a,
                                               ObliviousPredicate b) {
  auto eval_a = std::move(a.eval);
  auto eval_b = std::move(b.eval);
  return ObliviousPredicate{
      [eval_a, eval_b](const std::vector<Word>& row) {
        return eval_a(row) && eval_b(row);
      },
      a.and_gates_per_row + b.and_gates_per_row + 1};
}

void ObliviousSelect(Protocol2PC* proto, SharedRows* rows, size_t flag_col,
                     const ObliviousPredicate& pred) {
  INCSHRINK_CHECK_LT(flag_col, rows->width());
  const size_t n = rows->size();
  // Per row: predicate circuit + one AND with the existing flag bit.
  proto->AccountAndGates(n * (pred.and_gates_per_row + 1));
  for (size_t r = 0; r < n; ++r) {
    const std::vector<Word> row = rows->RecoverRow(r);
    // oblivious-ok: ideal-functionality select — the predicate + AND circuit
    // is charged for every row above; the flag is rewritten with a fresh
    // sharing for every row, match or not
    const Word keep = (row[flag_col] & 1) && pred.eval(row) ? 1 : 0;
    const WordShares fresh =
        ShareWord(keep, proto->internal_rng());
    proto->SetRowWord(rows, r, flag_col, fresh);
  }
}

WordShares ObliviousCountWhere(Protocol2PC* proto, const SharedRows& rows,
                               size_t flag_col,
                               const ObliviousPredicate& pred) {
  // Single-task submission of the batched COUNT primitive: one aggregate
  // accounting event, one fresh-share draw — bit-identical to the old
  // per-call path (same gate charge, same ShareWord mask sequence).
  const CountWhereTask task{&rows, flag_col, pred.and_gates_per_row,
                            &pred.eval};
  WordShares out;
  proto->CountWhereBatch(&task, 1, &out);
  return out;
}

}  // namespace incshrink
