#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/mpc/protocol.h"
#include "src/secret/shared_rows.h"

namespace incshrink {

/// \brief A predicate evaluated inside the 2PC protocol.
///
/// `eval` receives the recovered plaintext row (ideal-functionality view) and
/// returns whether it satisfies the predicate; `and_gates_per_row` is the
/// size of the equivalent Boolean circuit, charged once per row so the cost
/// accounting matches a real garbled-circuit evaluation.
struct ObliviousPredicate {
  std::function<bool(const std::vector<Word>&)> eval;
  uint64_t and_gates_per_row = 2 * kWordBits;

  /// Predicate that accepts every row (zero circuit cost).
  static ObliviousPredicate True();

  /// row[col] <=> value comparisons against a public constant.
  static ObliviousPredicate ColumnLess(size_t col, Word value);
  static ObliviousPredicate ColumnGreaterEq(size_t col, Word value);
  static ObliviousPredicate ColumnEquals(size_t col, Word value);

  /// lo <= row[col] <= hi.
  static ObliviousPredicate ColumnBetween(size_t col, Word lo, Word hi);

  /// Conjunction of two predicates (costs are additive plus one AND gate).
  static ObliviousPredicate AndThen(ObliviousPredicate a,
                                    ObliviousPredicate b);
};

/// \brief Oblivious selection (paper Appendix A.1.1).
///
/// Returns all input rows with `flag_col` rewritten to
/// `old_flag AND predicate(row)`; rows failing the predicate become dummy
/// tuples. The output size equals the input size, so selection leaks nothing
/// beyond the public cardinality. Every flag word is re-shared.
void ObliviousSelect(Protocol2PC* proto, SharedRows* rows, size_t flag_col,
                     const ObliviousPredicate& pred);

/// Obliviously counts rows whose `flag_col` is 1 AND that satisfy `pred`,
/// without revealing which rows matched. This is the view-based query
/// operator used to answer COUNT(*) requests over the materialized view.
WordShares ObliviousCountWhere(Protocol2PC* proto, const SharedRows& rows,
                               size_t flag_col,
                               const ObliviousPredicate& pred);

}  // namespace incshrink
