#include "src/oblivious/shuffle.h"

#include <algorithm>

#include "src/common/logging.h"

namespace incshrink {

namespace {

/// Switch count of the n-wire AS-Waksman block: floor(n/2) input switches,
/// floor(n/2) output switches minus one straight pair when n is even, plus
/// the two recursive subnets (n*log2(n) - n + 1 at powers of two).
uint64_t SwitchesRec(size_t n) {
  if (n < 2) return 0;
  if (n == 2) return 1;
  const size_t half = n / 2;
  const uint64_t out_pairs = (n % 2 == 0) ? half - 1 : half;
  return half + out_pairs + SwitchesRec(half) + SwitchesRec(n - half);
}

/// Depth of the n-wire block: input column + deepest subnet + output
/// column. The bottom subnet (ceil(n/2) wires) is always the deeper one.
uint64_t DepthRec(size_t n) {
  if (n < 2) return 0;
  if (n == 2) return 1;
  return 2 + DepthRec(n - n / 2);
}

/// Routes one n-wire AS-Waksman block over the physical row slots
/// pos[0..n), realizing slot[k] = old slot[perm[k]] (both indices local to
/// the block), and appends its programmed switches into layers
/// [base, base + DepthRec(n)). Wire plan (the block operates in place):
///
///   * input switch i pairs slots (2i, 2i+1); its even output is wire i of
///     the top subnet (the even slots), its odd output wire i of the bottom
///     subnet (the odd slots). When n is odd, input n-1 is a straight wire
///     into bottom wire floor(n/2).
///   * output switch j pairs slots (2j, 2j+1), fed by top wire j and bottom
///     wire j. When n is even the last pair is straight (output n-2 from
///     the top, n-1 from the bottom) — that fixed pair is what makes the
///     network complete with one switch fewer per even block.
///
/// Programming is the classic 2-coloring: label every output Top or Bottom
/// (which subnet its element travels through). The two outputs of one
/// output switch must differ, and so must the two outputs fed by the two
/// sides of one input switch. These "must differ" edges form disjoint
/// paths/cycles, so propagating from the pinned straight wires (and seeding
/// any free component deterministically) always 2-colors the block; a
/// conflict would mean the construction is wrong, so it CHECK-fails loudly.
void RouteBlock(const uint32_t* pos, const uint32_t* perm, size_t n,
                size_t base,
                std::vector<std::vector<ProgrammedSwitch>>* layers) {
  if (n < 2) return;
  if (n == 2) {
    (*layers)[base].push_back({{pos[0], pos[1]}, perm[0] == 1});
    return;
  }
  const size_t half = n / 2;  // top subnet width; bottom is n - half
  const size_t out_pairs = (n % 2 == 0) ? half - 1 : half;

  // inv[x] = output index where input x exits.
  std::vector<uint32_t> inv(n);
  for (size_t k = 0; k < n; ++k) inv[perm[k]] = static_cast<uint32_t>(k);

  constexpr int8_t kUnset = -1;
  constexpr int8_t kTop = 0;
  constexpr int8_t kBottom = 1;
  std::vector<int8_t> color(n, kUnset);
  std::vector<uint32_t> frontier;
  auto pin = [&](size_t k, int8_t c) {
    if (color[k] == kUnset) {
      color[k] = c;
      frontier.push_back(static_cast<uint32_t>(k));
    }
    INCSHRINK_CHECK_EQ(color[k], c);
  };
  auto propagate = [&]() {
    while (!frontier.empty()) {
      const uint32_t k = frontier.back();
      frontier.pop_back();
      const int8_t other = color[k] == kTop ? kBottom : kTop;
      if (k < 2 * out_pairs) pin(k ^ 1, other);    // output-switch partner
      const uint32_t in = perm[k];
      if (in < 2 * half) pin(inv[in ^ 1], other);  // input-switch partner
    }
  };
  if (n % 2 == 0) {
    pin(n - 2, kTop);  // straight last pair: n-2 from top, n-1 from bottom
    propagate();
    pin(n - 1, kBottom);
    propagate();
  } else {
    pin(n - 1, kBottom);  // output n-1 is hard-wired to the bottom subnet
    propagate();
    pin(inv[n - 1], kBottom);  // and so is the straight input n-1
    propagate();
  }
  for (size_t k = 0; k < n; ++k) {
    if (color[k] == kUnset) {
      pin(k, kTop);  // free cycle: fixed deterministic choice
      propagate();
    }
  }

  // Input column: switch i crosses iff input 2i must reach the bottom.
  for (size_t i = 0; i < half; ++i) {
    (*layers)[base].push_back(
        {{pos[2 * i], pos[2 * i + 1]}, color[inv[2 * i]] == kBottom});
  }

  // Subnet slot maps and sub-permutations over subnet wires.
  const size_t bot_n = n - half;
  std::vector<uint32_t> top_pos(half);
  std::vector<uint32_t> top_perm(half);
  std::vector<uint32_t> bot_pos(bot_n);
  std::vector<uint32_t> bot_perm(bot_n);
  for (size_t i = 0; i < half; ++i) {
    top_pos[i] = pos[2 * i];
    bot_pos[i] = pos[2 * i + 1];
  }
  if (n % 2 != 0) bot_pos[half] = pos[n - 1];
  for (size_t k = 0; k < n; ++k) {
    const uint32_t out_wire = static_cast<uint32_t>(k / 2);
    const uint32_t in = perm[k];
    if (color[k] == kTop) {
      top_perm[out_wire] = in / 2;
    } else {
      bot_perm[out_wire] = (n % 2 != 0 && in == n - 1)
                               ? static_cast<uint32_t>(half)
                               : in / 2;
    }
  }

  RouteBlock(top_pos.data(), top_perm.data(), half, base + 1, layers);
  RouteBlock(bot_pos.data(), bot_perm.data(), bot_n, base + 1, layers);

  // Output column, after the deeper (bottom) subnet's last layer.
  const size_t out_base = base + 1 + DepthRec(bot_n);
  for (size_t j = 0; j < out_pairs; ++j) {
    (*layers)[out_base].push_back(
        {{pos[2 * j], pos[2 * j + 1]}, color[2 * j] == kBottom});
  }
}

/// Per-job state of one fused multi-shuffle submission (mirrors JobState in
/// src/oblivious/sort.cc).
struct ShuffleState {
  explicit ShuffleState(const ShuffleJob& j)
      : job(j), cursor(*j.perm),
        mask_words(Protocol2PC::MuxSwapMaskWords(j.rows->width())) {}

  ShuffleJob job;
  ShuffleLayerCursor cursor;
  size_t mask_words;
  std::vector<ProgrammedSwitch> switches;  ///< current layer
  std::vector<Word> masks;  ///< pre-drawn reshares for the current layer
  bool active = true;
};

/// Applies sites [begin, end) of the current layer (pure kernels over
/// pre-drawn masks; switches of a layer touch disjoint rows, so any split
/// is race-free and bit-identical).
void ApplyShuffleRange(const ShuffleState& s, size_t begin, size_t end) {
  const Word* masks = s.masks.data();
  for (size_t p = begin; p < end; ++p) {
    s.job.proto->ApplyMuxSwap(s.job.rows, s.switches[p].pair.a,
                              s.switches[p].pair.b, s.switches[p].swap,
                              masks + p * s.mask_words);
  }
}

/// Serial-round variant: inline-draw site kernels, same per-proto draw
/// sequence, masks never leave registers.
void ApplyShuffleSitesFused(ShuffleState* s) {
  for (const ProgrammedSwitch& sw : s->switches) {
    s->job.proto->MuxSwapSite(s->job.rows, sw.pair.a, sw.pair.b, sw.swap);
  }
}

/// Stable argsort of the recovered (inside the ideal functionality) keys of
/// an already-shuffled table: returns perm with perm[k] = current index of
/// the row that must land at position k. Charges the fixed
/// ShuffleSortComparisons(n) key-comparison budget.
std::vector<uint32_t> ArgsortKeysInside(Protocol2PC* proto,
                                        const SharedRows& rows,
                                        size_t key_col, bool ascending) {
  const size_t n = rows.size();
  std::vector<uint32_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = static_cast<uint32_t>(i);
  std::vector<Word> keys(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = rows.share0_at(i, key_col) ^ rows.share1_at(i, key_col);
  }
  proto->AccountAndGates(ShuffleSortComparisons(n) * kWordBits);
  // Ideal-functionality argsort: the comparison budget is charged above as a
  // fixed function of n, and the outcomes feed only the control bits of the
  // second Waksman pass, whose switch count, layer structure and mask-draw
  // counts are pure functions of n; the observable trace stays
  // input-invariant (tests/shuffle_test.cc pins this).
  std::stable_sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
    return ascending ? keys[a] < keys[b] : keys[b] < keys[a];
  });
  return idx;
}

}  // namespace

std::vector<std::vector<ProgrammedSwitch>> WaksmanNetwork(
    const std::vector<uint32_t>& perm) {
  const size_t n = perm.size();
  std::vector<std::vector<ProgrammedSwitch>> layers(DepthRec(n));
  if (n < 2) return layers;
  std::vector<bool> seen(n, false);
  for (const uint32_t v : perm) {
    INCSHRINK_CHECK_LT(v, n);
    INCSHRINK_CHECK(!seen[v]);
    seen[v] = true;
  }
  std::vector<uint32_t> pos(n);
  for (size_t i = 0; i < n; ++i) pos[i] = static_cast<uint32_t>(i);
  RouteBlock(pos.data(), perm.data(), n, 0, &layers);
  return layers;
}

uint64_t ShuffleNetworkSwitches(size_t n) { return SwitchesRec(n); }

uint64_t ShuffleNetworkDepth(size_t n) { return DepthRec(n); }

std::vector<uint64_t> ShuffleNetworkLayerSizes(size_t n) {
  // Topology is permutation-independent, so the identity network carries
  // the layer structure of every n-row shuffle.
  std::vector<uint32_t> identity(n);
  for (size_t i = 0; i < n; ++i) identity[i] = static_cast<uint32_t>(i);
  std::vector<uint64_t> sizes;
  for (const auto& layer : WaksmanNetwork(identity)) {
    sizes.push_back(layer.size());
  }
  return sizes;
}

std::vector<uint32_t> DrawPublicPermutation(Protocol2PC* proto, size_t n) {
  std::vector<uint32_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<uint32_t>(i);
  if (n < 2) return perm;
  // Fisher-Yates over 64-bit draws assembled from two resharing-stream
  // words per step; the bound reduction is multiply-high, so exactly
  // 2*(n-1) words are consumed for every n — never data-dependent.
  std::vector<Word> raw(2 * (n - 1));
  proto->DrawReshareMasks(raw.size(), raw.data());
  size_t w = 0;
  for (size_t i = n - 1; i > 0; --i) {
    const uint64_t rh = raw[w++];
    const uint64_t rl = raw[w++];
    // High 64 bits of the 96-bit product (rh*2^32 + rl) * (i+1), computed
    // in pieces so it stays within uint64_t: both partials are < 2^64 and
    // their sum is < (i+1)*2^32 <= 2^64.
    const uint64_t m = static_cast<uint64_t>(i) + 1;
    const size_t j =
        static_cast<size_t>((rh * m + ((rl * m) >> 32)) >> 32);
    std::swap(perm[i], perm[j]);
  }
  return perm;
}

void ObliviousShuffle(Protocol2PC* proto, SharedRows* rows,
                      const std::vector<uint32_t>& perm,
                      const BatchExec& exec) {
  INCSHRINK_CHECK_EQ(perm.size(), rows->size());
  if (rows->size() < 2) return;
  ShuffleLayerCursor cursor(perm);
  std::vector<ProgrammedSwitch> layer;
  std::vector<RowPair> pairs;
  std::vector<WordShares> bits;
  while (cursor.Next(&layer)) {
    if (layer.empty()) continue;
    pairs.clear();
    bits.clear();
    pairs.reserve(layer.size());
    bits.reserve(layer.size());
    for (const ProgrammedSwitch& sw : layer) {
      pairs.push_back(sw.pair);
      // Public control bit as a constant sharing: the mux-swap circuit runs
      // either way, so cost and trace depend on the switch count only.
      bits.push_back(Protocol2PC::ConstShare(sw.swap ? 1 : 0));
    }
    proto->MuxRowsBatch(rows, pairs.data(), bits.data(), pairs.size(), exec);
  }
}

void ObliviousShuffleBatch(ShuffleJob* jobs, size_t num_jobs,
                           const BatchExec& exec) {
  if (num_jobs == 0) return;
  // Each job owns its protocol's resharing stream for the whole submission
  // (same contract as ObliviousSortBatch).
  for (size_t i = 0; i < num_jobs; ++i) {
    INCSHRINK_CHECK(jobs[i].proto != nullptr && jobs[i].rows != nullptr &&
                    jobs[i].perm != nullptr);
    INCSHRINK_CHECK_EQ(jobs[i].perm->size(), jobs[i].rows->size());
    for (size_t j = i + 1; j < num_jobs; ++j) {
      INCSHRINK_CHECK(jobs[i].proto != jobs[j].proto);
    }
  }
  if (num_jobs == 1) {
    // Single job: one MuxRowsBatch submission per layer — the batch API,
    // with its pre-draw + chunked pooled apply, IS this hot path.
    ObliviousShuffle(jobs[0].proto, jobs[0].rows, *jobs[0].perm, exec);
    return;
  }

  std::vector<ShuffleState> states;
  states.reserve(num_jobs);
  for (size_t i = 0; i < num_jobs; ++i) states.emplace_back(jobs[i]);

  // Lockstep layer rounds, exactly the ObliviousSortBatch discipline:
  // phase 1 emits and accounts each job's layer serially in job order,
  // phase 2 applies the round's sites — fused serial site kernels, or
  // per-job pre-drawn masks with a cross-job chunked pooled apply.
  while (true) {
    size_t total_sites = 0;
    bool any_active = false;
    for (ShuffleState& s : states) {
      if (!s.active) continue;
      s.active = s.cursor.Next(&s.switches);
      if (!s.active || s.switches.empty()) continue;
      any_active = true;
      s.job.proto->AccountMuxSwapBatch(s.switches.size(),
                                       s.job.rows->width());
      total_sites += s.switches.size();
    }
    if (!any_active) {
      bool live = false;
      for (const ShuffleState& s : states) live = live || s.active;
      if (!live) break;
      continue;  // a round of empty layers; keep draining the cursors
    }

    if (exec.Serial(total_sites)) {
      for (ShuffleState& s : states) {
        if (!s.active || s.switches.empty()) continue;
        ApplyShuffleSitesFused(&s);
      }
      continue;
    }
    for (ShuffleState& s : states) {
      if (!s.active || s.switches.empty()) continue;
      s.masks.resize(s.switches.size() * s.mask_words);
      s.job.proto->DrawReshareMasks(s.masks.size(), s.masks.data());
    }
    struct Chunk {
      const ShuffleState* state;
      size_t begin;
      size_t end;
    };
    const size_t chunk_size =
        BatchChunkSize(total_sites, exec.pool->num_threads());
    std::vector<Chunk> chunks;
    for (const ShuffleState& s : states) {
      if (!s.active || s.switches.empty()) continue;
      for (size_t b = 0; b < s.switches.size(); b += chunk_size) {
        chunks.push_back(
            {&s, b, std::min(s.switches.size(), b + chunk_size)});
      }
    }
    exec.pool->ParallelFor(chunks.size(), [&](size_t c) {
      ApplyShuffleRange(*chunks[c].state, chunks[c].begin, chunks[c].end);
    });
  }
}

void ObliviousRandomPermuteBatch(PermuteJob* jobs, size_t num_jobs,
                                 const BatchExec& exec) {
  if (num_jobs == 0) return;
  // Permutation draws run in job order, each from its own protocol stream,
  // then every network executes as one fused submission.
  std::vector<std::vector<uint32_t>> perms(num_jobs);
  std::vector<ShuffleJob> shuffle_jobs(num_jobs);
  for (size_t i = 0; i < num_jobs; ++i) {
    INCSHRINK_CHECK(jobs[i].proto != nullptr && jobs[i].rows != nullptr);
    perms[i] = DrawPublicPermutation(jobs[i].proto, jobs[i].rows->size());
    shuffle_jobs[i] = {jobs[i].proto, jobs[i].rows, &perms[i]};
  }
  ObliviousShuffleBatch(shuffle_jobs.data(), num_jobs, exec);
}

void ObliviousRandomPermute(Protocol2PC* proto, SharedRows* rows,
                            const BatchExec& exec) {
  PermuteJob job{proto, rows};
  ObliviousRandomPermuteBatch(&job, 1, exec);
}

uint64_t ShuffleSortComparisons(size_t n) {
  if (n < 2) return 0;
  uint64_t lg = 0;
  while ((static_cast<size_t>(1) << lg) < n) ++lg;
  return static_cast<uint64_t>(n) * lg;
}

void ObliviousShuffleSortBatch(SortJob* jobs, size_t num_jobs,
                               const BatchExec& exec) {
  if (num_jobs == 0) return;
  for (size_t i = 0; i < num_jobs; ++i) {
    INCSHRINK_CHECK(jobs[i].proto != nullptr && jobs[i].rows != nullptr);
    INCSHRINK_CHECK(!jobs[i].lex);  // shuffle-sort is single-key
    INCSHRINK_CHECK(jobs[i].algorithm == SortAlgorithm::kShuffleSort);
    for (size_t j = i + 1; j < num_jobs; ++j) {
      INCSHRINK_CHECK(jobs[i].proto != jobs[j].proto);
    }
  }
  // Pass 1: random Waksman shuffle (per-job draws in job order, fused
  // execution).
  std::vector<std::vector<uint32_t>> perms(num_jobs);
  std::vector<ShuffleJob> shuffle_jobs(num_jobs);
  for (size_t i = 0; i < num_jobs; ++i) {
    perms[i] = DrawPublicPermutation(jobs[i].proto, jobs[i].rows->size());
    shuffle_jobs[i] = {jobs[i].proto, jobs[i].rows, &perms[i]};
  }
  ObliviousShuffleBatch(shuffle_jobs.data(), num_jobs, exec);
  // Pass 2: Waksman programmed from the stable argsort of the shuffled
  // keys. Ties land in shuffled order — a uniformly random (but seeded,
  // deterministic) placement, which is exactly why the shuffle must come
  // first: the argsort's control bits then reveal nothing about the
  // pre-shuffle arrangement.
  for (size_t i = 0; i < num_jobs; ++i) {
    perms[i] = ArgsortKeysInside(jobs[i].proto, *jobs[i].rows,
                                 jobs[i].key_col, jobs[i].ascending);
  }
  ObliviousShuffleBatch(shuffle_jobs.data(), num_jobs, exec);
}

void ObliviousShuffleSort(Protocol2PC* proto, SharedRows* rows,
                          size_t key_col, bool ascending,
                          const BatchExec& exec) {
  SortJob job{proto,     rows, key_col, 0, /*lex=*/false,
              ascending, SortAlgorithm::kShuffleSort};
  ObliviousShuffleSortBatch(&job, 1, exec);
}

}  // namespace incshrink
