#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/mpc/protocol.h"
#include "src/oblivious/sort.h"
#include "src/secret/shared_rows.h"

namespace incshrink {

/// \brief Oblivious shuffles via control-bit-programmed Waksman permutation
/// networks, and the ORQ-style shuffle-then-sort fast path built on them.
///
/// A Waksman (AS-Waksman) network realizes *any* permutation of n wires with
/// ~n*log2(n) - n + 1 two-input switches — a log(n) factor fewer gates than
/// Batcher's O(n log^2 n) compare-exchange network, which is what the cache
/// recycle/flush paths pay today even though they only need *some* secret
/// permutation. Each switch is exactly one row mux-swap whose control bit is
/// programmed (publicly, from a permutation drawn via the protocol's seeded
/// stream) instead of computed from a key comparison: the conditional swap
/// still runs the full per-bit AND circuit, because hiding whether each
/// switch crossed is what keeps the realized permutation secret from the
/// evaluating servers.
///
/// Execution model mirrors src/oblivious/sort.cc: the network is emitted
/// layer by layer (a `ShuffleLayerCursor`), every layer's switches touch
/// pairwise-disjoint rows, and each layer is one batched `MuxRowsBatch`
/// submission — pre-drawn resharing masks in scalar site order, aggregate
/// cost charged once per layer, optionally thread-parallel apply. Output
/// shares, the internal randomness stream and the aggregate circuit cost
/// are bit-identical at any thread count (tests/shuffle_test.cc).
///
/// The network *topology* (switch placement, layer sizes, depth) is a pure
/// function of n; only the control bits depend on the permutation. The
/// permutation itself is drawn exclusively through DrawReshareMasks
/// (tools/check_no_hidden_entropy.sh pins this), so every draw count is a
/// pure function of n too and the whole circuit trace is input-invariant.

/// One programmed switch: obliviously swap `pair` iff `swap` (the public
/// control bit). All switches of a network execute regardless of their
/// control bit — the bit only decides the crossing.
struct ProgrammedSwitch {
  RowPair pair;
  bool swap = false;
};

/// Builds the programmed Waksman network realizing, for an array `src` of
/// perm.size() rows, the in-place rearrangement dst[k] = src[perm[k]].
/// Returned as execution layers of pairwise-disjoint switches. `perm` must
/// be a permutation of [0, n).
std::vector<std::vector<ProgrammedSwitch>> WaksmanNetwork(
    const std::vector<uint32_t>& perm);

/// Number of switches the n-wire network contains (pure function of n):
/// 0 for n < 2, and S(n) = floor(n/2) + (n even ? n/2 - 1 : floor(n/2))
/// + S(floor(n/2)) + S(ceil(n/2)) otherwise — n*log2(n) - n + 1 at powers
/// of two.
uint64_t ShuffleNetworkSwitches(size_t n);

/// Depth (layer count) of the n-wire network: d(2) = 1,
/// d(n) = 2 + d(ceil(n/2)).
uint64_t ShuffleNetworkDepth(size_t n);

/// Per-layer switch counts in execution order; sums to
/// ShuffleNetworkSwitches(n). Drives the bench layer histogram and the
/// layer property tests.
std::vector<uint64_t> ShuffleNetworkLayerSizes(size_t n);

/// Enumerates a programmed network one layer at a time, mirroring
/// LayerCursor in src/oblivious/sort.cc: each `Next` yields one layer of
/// disjoint switches, the unit submitted as one batched MuxRowsBatch call.
class ShuffleLayerCursor {
 public:
  explicit ShuffleLayerCursor(const std::vector<uint32_t>& perm)
      : layers_(WaksmanNetwork(perm)) {}

  /// Fills `out` with the next layer's switches; returns false when the
  /// network is exhausted.
  bool Next(std::vector<ProgrammedSwitch>* out) {
    out->clear();
    if (next_ >= layers_.size()) return false;
    *out = layers_[next_++];
    return true;
  }

 private:
  std::vector<std::vector<ProgrammedSwitch>> layers_;
  size_t next_ = 0;
};

/// Draws a uniformly random public permutation of [0, n) from the
/// protocol's internal stream — the *only* sanctioned control-bit entropy
/// source for shuffles. Consumes exactly 2*(n-1) DrawReshareMasks words
/// (64 bits per Fisher-Yates step, reduced by multiply-high), so the draw
/// count is a pure function of n and the stream stays aligned across
/// same-cardinality inputs. The permutation is public in the same sense the
/// network topology is: it is jointly seeded randomness, independent of any
/// secret-shared payload.
std::vector<uint32_t> DrawPublicPermutation(Protocol2PC* proto, size_t n);

/// Applies `perm` to `rows` obliviously (rows'[k] = rows[perm[k]]) through
/// the programmed Waksman network, one MuxRowsBatch submission per layer.
void ObliviousShuffle(Protocol2PC* proto, SharedRows* rows,
                      const std::vector<uint32_t>& perm,
                      const BatchExec& exec = {});

/// One shuffle of a multi-shuffle submission. As with SortJob, jobs of one
/// batch must run on pairwise-distinct protocol instances.
struct ShuffleJob {
  Protocol2PC* proto = nullptr;
  SharedRows* rows = nullptr;
  /// Permutation over rows->size() entries (not owned).
  const std::vector<uint32_t>* perm = nullptr;
};

/// Cross-shard / cross-tenant shuffle fusion: executes every job's network
/// in lockstep layer rounds, pooling the round's mux-swap sites across jobs
/// into wide submissions. Bit-identical per job to its ObliviousShuffle run
/// alone, at any thread count and any job mix (same contract — and same
/// structure — as ObliviousSortBatch).
void ObliviousShuffleBatch(ShuffleJob* jobs, size_t num_jobs,
                           const BatchExec& exec = {});

/// One recycle-tier permute job: the cache shard to re-randomize.
struct PermuteJob {
  Protocol2PC* proto = nullptr;
  SharedRows* rows = nullptr;
};

/// Cache-recycle tier: draws one fresh public permutation per job from the
/// job's own protocol stream (job order) and applies all networks as one
/// fused submission. This replaces the flush sort outright under
/// `sort_algorithm = shuffle_sort`: the flush's prefix cut is public-size,
/// so *any* secret permutation randomizes which rows are fetched versus
/// recycled — full key order is never needed.
void ObliviousRandomPermuteBatch(PermuteJob* jobs, size_t num_jobs,
                                 const BatchExec& exec = {});

/// Single-job convenience wrapper around ObliviousRandomPermuteBatch.
void ObliviousRandomPermute(Protocol2PC* proto, SharedRows* rows,
                            const BatchExec& exec = {});

/// Comparison sites the shuffle-then-sort path charges for the in-protocol
/// argsort of n shuffled keys: n * ceil(log2 n) (a comparison-based sort's
/// information-theoretic bound, matching what a real oblivious 2PC
/// quicksort pays post-shuffle). Pure function of n, so the charge — like
/// every other component of the shuffle-sort trace — is input-invariant.
uint64_t ShuffleSortComparisons(size_t n);

/// ORQ-style shuffle-then-sort: (1) apply a random Waksman shuffle drawn
/// from the protocol stream, (2) stably argsort the shuffled keys inside
/// the ideal functionality — charging ShuffleSortComparisons(n) key
/// comparisons — and (3) apply a second Waksman pass programmed from that
/// argsort. Total O(n log n) gates versus Batcher's O(n log^2 n). The key
/// order of the result equals Batcher's; tie placement differs (ties land
/// in shuffled order), which is why the Batcher goldens stay the reference
/// and this path is opt-in.
void ObliviousShuffleSort(Protocol2PC* proto, SharedRows* rows,
                          size_t key_col, bool ascending,
                          const BatchExec& exec = {});

/// Multi-job fused shuffle-then-sort (the SortAlgorithm::kShuffleSort arm
/// of ObliviousSortBatch): per-job permutation draws and argsorts run in
/// job order; both Waksman passes execute as fused lockstep submissions.
/// Bit-identical per job to its ObliviousShuffleSort run alone. Jobs must
/// be single-key (lex == false) and on pairwise-distinct protocols.
void ObliviousShuffleSortBatch(SortJob* jobs, size_t num_jobs,
                               const BatchExec& exec = {});

}  // namespace incshrink
