#include "src/oblivious/join.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/logging.h"
#include "src/oblivious/formats.h"
#include "src/oblivious/sort.h"

namespace incshrink {

namespace {

// Merged-table layout used inside the sort-merge join.
constexpr size_t kMergedSortCol = 0;   // key * 2 + table_id
constexpr size_t kMergedTableCol = 1;  // 0 = T1, 1 = T2
constexpr size_t kMergedKeyCol = 2;
constexpr size_t kMergedDateCol = 3;
constexpr size_t kMergedRidCol = 4;
constexpr size_t kMergedValidCol = 5;
constexpr size_t kMergedWidth = 6;

bool WindowOk(const JoinSpec& spec, Word date1, Word date2) {
  if (!spec.use_window) return true;
  if (date2 < date1) return false;
  const Word delta = date2 - date1;
  return delta >= spec.window_lo && delta <= spec.window_hi;
}

/// Appends one row in view format; real joins carry the pair's attributes,
/// dummies carry random payload. Advances the FIFO sequence counter.
void EmitViewRow(Protocol2PC* proto, SharedRows* out, bool is_view, Word key,
                 Word date1, Word date2, Word rid1, Word rid2,
                 uint64_t* seq) {
  Rng* rng = proto->internal_rng();
  std::vector<Word> row(kViewWidth);
  // oblivious-ok: ideal-functionality emit — every call appends exactly one
  // fresh-shared row of the same width; real/dummy split is invisible in the
  // shares and the per-slot mux cost is charged by the caller
  row[kViewIsViewCol] = is_view ? 1 : 0;
  row[kViewSortKeyCol] = MakeCacheSortKey(is_view, (*seq)++);
  // oblivious-ok: same site — payload source selection for the emitted row
  if (is_view) {
    row[kViewKeyCol] = key;
    row[kViewDate1Col] = date1;
    row[kViewDate2Col] = date2;
    row[kViewRid1Col] = rid1;
    row[kViewRid2Col] = rid2;
  } else {
    row[kViewKeyCol] = rng->Next32();
    row[kViewDate1Col] = rng->Next32();
    row[kViewDate2Col] = rng->Next32();
    row[kViewRid1Col] = rng->Next32();
    row[kViewRid2Col] = rng->Next32();
  }
  out->AppendSecretRow(row, rng);
}

}  // namespace

JoinResult TruncatedSortMergeJoin(Protocol2PC* proto, const SharedRows& t1,
                                  const SharedRows& t2, const JoinSpec& spec,
                                  uint64_t* seq, ContributionUsage* usage,
                                  const BatchExec& exec) {
  ContributionUsage local_usage;
  if (usage == nullptr) usage = &local_usage;
  INCSHRINK_CHECK_GE(t1.width(), kSrcWidth);
  INCSHRINK_CHECK_GE(t2.width(), kSrcWidth);
  Rng* rng = proto->internal_rng();

  // ---- Union + tag (Fig. 2 "Union"). Building the merged table is pure
  // wiring in a circuit; we charge the share-transfer bytes.
  SharedRows merged(kMergedWidth);
  merged.Reserve(t1.size() + t2.size());
  auto append_source = [&](const SharedRows& src, Word table_id) {
    for (size_t r = 0; r < src.size(); ++r) {
      const std::vector<Word> row = src.RecoverRow(r);
      std::vector<Word> m(kMergedWidth);
      // key*2 + table_id orders T1 records before T2 records on key ties.
      m[kMergedSortCol] = (row[kSrcKeyCol] << 1) | table_id;
      m[kMergedTableCol] = table_id;
      m[kMergedKeyCol] = row[kSrcKeyCol];
      m[kMergedDateCol] = row[kSrcDateCol];
      m[kMergedRidCol] = row[kSrcRidCol];
      m[kMergedValidCol] = row[kSrcValidCol] & 1;
      merged.AppendSecretRow(m, rng);
    }
  };
  append_source(t1, 0);
  append_source(t2, 1);
  proto->AccountBytes(merged.TotalBytes());

  // ---- Oblivious sort by composite key (Fig. 2 "Sort"). The record id
  // breaks remaining ties so the scan order — and with it the greedy
  // truncation — is a deterministic function of the data.
  ObliviousSortLex(proto, &merged, kMergedSortCol, kMergedRidCol,
                   /*ascending=*/true, exec);

  // ---- Linear scan (Fig. 2 "Linear scan"): after accessing each merged
  // tuple, output exactly `omega` slots. Charge the scan circuit: per merged
  // tuple a key-group comparison + validity/window checks, per output slot a
  // row-width mux.
  const size_t n = merged.size();
  proto->AccountAndGates(n * 5 * kWordBits);
  proto->AccountAndGates(n * spec.omega * kViewWidth * kWordBits);

  JoinResult result{SharedRows(kViewWidth), 0};
  // The scan emits exactly omega slots per merged tuple.
  result.rows.Reserve(static_cast<size_t>(spec.omega) * n);

  struct GroupEntry {
    Word date;
    Word rid;
  };
  std::vector<GroupEntry> group;  // T1 tuples of the current key
  Word group_key = 0;
  bool group_open = false;

  // oblivious-ok-begin: ideal-functionality linear scan (Fig. 2) — the
  // per-tuple group/validity/window circuit and the omega padded output
  // slots per merged tuple are charged up front (lines above); the scan
  // emits exactly omega rows per tuple regardless of matches, and the
  // usage map models the in-circuit per-record budget columns
  for (size_t r = 0; r < n; ++r) {
    const std::vector<Word> row = merged.RecoverRow(r);
    const Word key = row[kMergedKeyCol];
    const bool valid = row[kMergedValidCol] != 0;
    // Dummy rows never join and never affect key groups (their random keys
    // could otherwise split a real group on composite-key wraparound); they
    // still consume their omega padded output slots below.
    if (valid && (!group_open || key != group_key)) {
      group.clear();
      group_key = key;
      group_open = true;
    }
    uint32_t emitted = 0;
    if (row[kMergedTableCol] == 0) {
      // T1 record: joins are attributed to the matching T2 accesses later;
      // this access emits only padding.
      if (valid) group.push_back(GroupEntry{row[kMergedDateCol],
                                            row[kMergedRidCol]});
    } else if (valid) {
      // T2 record: join against the already-scanned T1 group, oldest first,
      // honouring both records' per-invocation caps.
      const Word rid2 = row[kMergedRidCol];
      for (GroupEntry& g : group) {
        if (spec.cap_t2 && (*usage)[rid2] >= spec.omega) break;
        if (spec.cap_t1 && (*usage)[g.rid] >= spec.omega) continue;
        if (!WindowOk(spec, g.date, row[kMergedDateCol])) continue;
        if (emitted >= spec.omega) break;  // padded slots per access
        EmitViewRow(proto, &result.rows, /*is_view=*/true, key, g.date,
                    row[kMergedDateCol], g.rid, rid2, seq);
        ++(*usage)[g.rid];
        ++(*usage)[rid2];
        ++emitted;
        ++result.real_count;
      }
    }
    for (uint32_t pad = emitted; pad < spec.omega; ++pad) {
      EmitViewRow(proto, &result.rows, /*is_view=*/false, 0, 0, 0, 0, 0, seq);
    }
  }
  // oblivious-ok-end

  INCSHRINK_CHECK_EQ(result.rows.size(), spec.omega * n);
  return result;
}

JoinResult TruncatedNestedLoopJoin(Protocol2PC* proto, SharedRows* t1,
                                   SharedRows* t2, size_t budget_col1,
                                   size_t budget_col2, const JoinSpec& spec,
                                   uint64_t* seq) {
  INCSHRINK_CHECK_LT(budget_col1, t1->width());
  INCSHRINK_CHECK_LT(budget_col2, t2->width());
  Rng* rng = proto->internal_rng();
  JoinResult result{SharedRows(kViewWidth), 0};

  const size_t n1 = t1->size();
  const size_t n2 = t2->size();
  // Per pair: budget checks + key equality + window + row mux + the muxed
  // budget decrement (Alg. 4 l.6-11). The decrement circuit runs for every
  // pair — a mux selects whether the decremented value is kept — so its cost
  // is charged unconditionally; charging it only on matching pairs would
  // make the simulated transcript data-dependent.
  proto->AccountAndGates(n1 * n2 * (7 + kViewWidth) * kWordBits);

  for (size_t i = 0; i < n1; ++i) {
    std::vector<Word> outer = t1->RecoverRow(i);
    SharedRows block(kViewWidth);  // o_i in Algorithm 4
    uint64_t block_seq = 0;        // temporary in-block ordering
    for (size_t j = 0; j < n2; ++j) {
      std::vector<Word> inner = t2->RecoverRow(j);
      const bool budgets_ok =
          outer[budget_col1] > 0 && inner[budget_col2] > 0;
      const bool match = budgets_ok && (outer[kSrcValidCol] & 1) &&
                         (inner[kSrcValidCol] & 1) &&
                         outer[kSrcKeyCol] == inner[kSrcKeyCol] &&
                         WindowOk(spec, outer[kSrcDateCol],
                                  inner[kSrcDateCol]);
      // oblivious-ok: ideal-functionality pair evaluation (Alg. 4) — the
      // full per-pair circuit incl. the muxed budget decrement is charged
      // unconditionally above; exactly one row is emitted per pair either way
      if (match) {
        EmitViewRow(proto, &block, true, outer[kSrcKeyCol],
                    outer[kSrcDateCol], inner[kSrcDateCol],
                    outer[kSrcRidCol], inner[kSrcRidCol], &block_seq);
        // consume_budget(tup1, tup2, 1): decrement and re-share in place
        // (circuit cost charged per pair above, match or not).
        --outer[budget_col1];
        --inner[budget_col2];
        const WordShares fresh = ShareWord(inner[budget_col2], rng);
        proto->SetRowWord(t2, j, budget_col2, fresh);
      } else {
        EmitViewRow(proto, &block, false, 0, 0, 0, 0, 0, &block_seq);
      }
    }
    const WordShares fresh_outer = ShareWord(outer[budget_col1], rng);
    proto->SetRowWord(t1, i, budget_col1, fresh_outer);

    // Alg. 4 lines 12-13: oblivious sort of o_i (real rows first), keep the
    // first omega entries.
    ObliviousSort(proto, &block, kViewSortKeyCol, /*ascending=*/false);
    block.Truncate(spec.omega);
    while (block.size() < spec.omega) {
      EmitViewRow(proto, &block, false, 0, 0, 0, 0, 0, &block_seq);
    }
    // Rewrite sort keys with the global FIFO sequence before caching.
    for (size_t r = 0; r < block.size(); ++r) {
      const Word is_view = block.RecoverAt(r, kViewIsViewCol) & 1;
      result.real_count += is_view;
      const Word sk = MakeCacheSortKey(is_view != 0, (*seq)++);
      const WordShares fresh = ShareWord(sk, rng);
      proto->SetRowWord(&block, r, kViewSortKeyCol, fresh);
    }
    result.rows.AppendAll(block);
  }

  INCSHRINK_CHECK_EQ(result.rows.size(), spec.omega * n1);
  return result;
}

uint32_t ObliviousJoinCountFull(Protocol2PC* proto, const SharedRows& t1,
                                const SharedRows& t2, const JoinSpec& spec,
                                const BatchExec& exec) {
  Rng* rng = proto->internal_rng();
  // Union + tag, as in the truncated join.
  SharedRows merged(kMergedWidth);
  merged.Reserve(t1.size() + t2.size());
  auto append_source = [&](const SharedRows& src, Word table_id) {
    for (size_t r = 0; r < src.size(); ++r) {
      const std::vector<Word> row = src.RecoverRow(r);
      std::vector<Word> m(kMergedWidth);
      m[kMergedSortCol] = (row[kSrcKeyCol] << 1) | table_id;
      m[kMergedTableCol] = table_id;
      m[kMergedKeyCol] = row[kSrcKeyCol];
      m[kMergedDateCol] = row[kSrcDateCol];
      m[kMergedRidCol] = row[kSrcRidCol];
      m[kMergedValidCol] = row[kSrcValidCol] & 1;
      merged.AppendSecretRow(m, rng);
    }
  };
  append_source(t1, 0);
  append_source(t2, 1);
  proto->AccountBytes(merged.TotalBytes());

  ObliviousSortLex(proto, &merged, kMergedSortCol, kMergedRidCol,
                   /*ascending=*/true, exec);

  // Oblivious pair counting over the sorted union: an O(n log n) prefix
  // aggregation circuit (per level, one adder + mux per element).
  const size_t n = merged.size();
  uint64_t levels = 1;
  while ((1ull << levels) < n) ++levels;
  proto->AccountAndGates(n * levels * 3 * kWordBits);

  uint32_t count = 0;
  std::vector<std::pair<Word, Word>> group;  // (date, unused) of T1 tuples
  Word group_key = 0;
  bool group_open = false;
  // oblivious-ok-begin: ideal-functionality pair count — the O(n log n)
  // prefix-aggregation circuit is charged up front (lines above); the scan
  // only computes the value that circuit would output
  for (size_t r = 0; r < n; ++r) {
    const std::vector<Word> row = merged.RecoverRow(r);
    if (!(row[kMergedValidCol] & 1)) continue;
    const Word key = row[kMergedKeyCol];
    if (!group_open || key != group_key) {
      group.clear();
      group_key = key;
      group_open = true;
    }
    if (row[kMergedTableCol] == 0) {
      group.push_back({row[kMergedDateCol], 0});
    } else {
      for (const auto& g : group) {
        if (WindowOk(spec, g.first, row[kMergedDateCol])) ++count;
      }
    }
  }
  // oblivious-ok-end
  return count;
}

uint32_t ReferenceTruncatedJoinCount(const std::vector<std::vector<Word>>& t1,
                                     const std::vector<std::vector<Word>>& t2,
                                     const JoinSpec& spec,
                                     uint32_t* untruncated_count) {
  // Mirrors the sort-merge scan exactly: merge, sort by (key, table-id) with
  // a stable sort (T1 before T2 on ties), then greedily match in scan order
  // under the per-record caps.
  struct Entry {
    Word key;
    Word table;
    Word date;
    Word rid;
  };
  std::vector<Entry> merged;
  for (const auto& a : t1) {
    if (a[kSrcValidCol] & 1)
      merged.push_back({a[kSrcKeyCol], 0, a[kSrcDateCol], a[kSrcRidCol]});
  }
  for (const auto& b : t2) {
    if (b[kSrcValidCol] & 1)
      merged.push_back({b[kSrcKeyCol], 1, b[kSrcDateCol], b[kSrcRidCol]});
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Entry& x, const Entry& y) {
                     if (x.key != y.key) return x.key < y.key;
                     if (x.table != y.table) return x.table < y.table;
                     return x.rid < y.rid;
                   });

  uint32_t truncated = 0;
  uint32_t full = 0;
  ContributionUsage usage;
  struct GroupEntry {
    Word date;
    Word rid;
  };
  std::vector<GroupEntry> group;
  Word group_key = 0;
  bool group_open = false;
  for (const Entry& e : merged) {
    if (!group_open || e.key != group_key) {
      group.clear();
      group_key = e.key;
      group_open = true;
    }
    if (e.table == 0) {
      group.push_back(GroupEntry{e.date, e.rid});
      continue;
    }
    uint32_t emitted = 0;
    for (GroupEntry& g : group) {
      if (WindowOk(spec, g.date, e.date)) ++full;
      if (spec.cap_t2 && usage[e.rid] >= spec.omega) continue;
      if (spec.cap_t1 && usage[g.rid] >= spec.omega) continue;
      if (!WindowOk(spec, g.date, e.date)) continue;
      if (emitted >= spec.omega) continue;
      ++usage[g.rid];
      ++usage[e.rid];
      ++emitted;
      ++truncated;
    }
  }
  if (untruncated_count != nullptr) *untruncated_count = full;
  return truncated;
}

}  // namespace incshrink
