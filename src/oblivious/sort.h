#pragma once

#include <cstddef>
#include <cstdint>

#include "src/mpc/protocol.h"
#include "src/secret/shared_rows.h"

namespace incshrink {

/// \brief Oblivious sorting of secret-shared rows (paper's ObliSort).
///
/// Implements Batcher's odd-even merge sorting network for arbitrary input
/// length. The sequence of compare-exchange operations depends only on the
/// public row count, never on the data — the defining property of an
/// oblivious sort (tested by asserting identical gate traces across inputs).
///
/// Cost: ~ n/4 * log^2(n) compare-exchanges, each costing one 32-bit
/// comparison plus one row-width mux-swap, matching the sort-network costs
/// the paper's EMP implementation pays.

/// Sorts `rows` in place by the 32-bit key in `key_col`.
/// Ascending if `ascending`, else descending.
void ObliviousSort(Protocol2PC* proto, SharedRows* rows, size_t key_col,
                   bool ascending);

/// Sorts `rows` lexicographically by (major_col, minor_col). When the pair
/// is unique per row this yields a deterministic total order even though the
/// underlying network is not stable.
void ObliviousSortLex(Protocol2PC* proto, SharedRows* rows, size_t major_col,
                      size_t minor_col, bool ascending);

/// Returns the number of compare-exchanges the network performs for `n` rows
/// (exposed for cost analysis and tests).
uint64_t SortNetworkCompareExchanges(size_t n);

}  // namespace incshrink
