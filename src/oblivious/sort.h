#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/mpc/protocol.h"
#include "src/secret/shared_rows.h"

namespace incshrink {

/// \brief Oblivious sorting of secret-shared rows (paper's ObliSort).
///
/// Implements Batcher's odd-even merge sorting network for arbitrary input
/// length. The sequence of compare-exchange operations depends only on the
/// public row count, never on the data — the defining property of an
/// oblivious sort (tested by asserting identical gate traces across inputs).
///
/// Cost: ~ n/4 * log^2(n) compare-exchanges, each costing one 32-bit
/// comparison plus one row-width mux-swap, matching the sort-network costs
/// the paper's EMP implementation pays.
///
/// Execution model: the network is emitted **layer by layer** — one layer
/// per (p, k) pass of the network, whose compare-exchange pairs are disjoint
/// by construction — and each layer is submitted as one batched
/// `CompareExchangeRowsBatch` call: one aggregate cost event instead of a
/// per-gate charge, pre-drawn resharing masks in scalar call order, and an
/// optionally thread-parallel apply over the disjoint pairs. Output shares,
/// the internal randomness stream and the aggregate circuit cost are
/// bit-identical to the scalar per-op path at any thread count
/// (tests/batched_oblivious_test.cc).

/// Which full-sort execution policy an oblivious sort runs.
///
///  * kBatcher — Batcher's odd-even merge network, O(n log^2 n)
///    compare-exchanges. The reference path: goldens are recorded on it.
///  * kShuffleSort — ORQ-style shuffle-then-sort (src/oblivious/shuffle.h):
///    a random Waksman shuffle followed by a second Waksman pass programmed
///    from the stable in-protocol argsort of the shuffled keys,
///    O(n log n) mux gates + n*ceil(log2 n) charged comparisons. Opt-in
///    via IncShrinkConfig::sort_algorithm; same sorted key order, different
///    tie placement and circuit trace (both traces remain pure functions of
///    the public row count — tests/shuffle_test.cc pins this).
enum class SortAlgorithm : uint8_t {
  kBatcher,
  kShuffleSort,
};

const char* SortAlgorithmName(SortAlgorithm a);

/// Sorts `rows` in place by the 32-bit key in `key_col`.
/// Ascending if `ascending`, else descending.
void ObliviousSort(Protocol2PC* proto, SharedRows* rows, size_t key_col,
                   bool ascending);

/// Sorts `rows` lexicographically by (major_col, minor_col). When the pair
/// is unique per row this yields a deterministic total order even though the
/// underlying network is not stable.
void ObliviousSortLex(Protocol2PC* proto, SharedRows* rows, size_t major_col,
                      size_t minor_col, bool ascending);

/// Batched variants taking an explicit execution policy (pool + the
/// `oblivious_batch_min_layer` threshold); the two-argument-shorter forms
/// above run the serial batch kernels.
void ObliviousSort(Protocol2PC* proto, SharedRows* rows, size_t key_col,
                   bool ascending, const BatchExec& exec);
void ObliviousSortLex(Protocol2PC* proto, SharedRows* rows, size_t major_col,
                      size_t minor_col, bool ascending,
                      const BatchExec& exec);

/// One oblivious sort of a multi-sort submission. Jobs of one batch must
/// run on pairwise-distinct protocol instances (each sort consumes its own
/// protocol's resharing stream; two jobs on one protocol would interleave
/// draws nondeterministically).
struct SortJob {
  Protocol2PC* proto = nullptr;
  SharedRows* rows = nullptr;
  size_t key_col = 0;    ///< sort key (major key for lex jobs)
  size_t minor_col = 0;  ///< lex tie-break column (lex jobs only)
  bool lex = false;
  bool ascending = true;
  /// Execution policy of this job. A batch may mix policies freely (jobs
  /// run on distinct protocols, so the groups cannot perturb each other's
  /// streams); shuffle-sort jobs must be single-key (lex == false).
  SortAlgorithm algorithm = SortAlgorithm::kBatcher;
};

/// Cross-shard / cross-tenant sort fusion: executes every job's sorting
/// network in lockstep layer rounds — round r applies layer r of every job
/// whose network still has one — so the pair-apply work of all jobs pools
/// into a handful of wide submissions instead of serializing job by job.
/// Masks are pre-drawn per job in scalar order before each round and cost
/// is charged per job per layer, so every job's output shares, randomness
/// stream and aggregate cost are bit-identical to running its
/// ObliviousSort alone (at any thread count, any job mix).
void ObliviousSortBatch(SortJob* jobs, size_t num_jobs,
                        const BatchExec& exec = {});

/// Scalar reference path: the pre-batching per-compare-exchange
/// implementation, kept for equivalence tests and scalar-vs-batched
/// benchmarks. Bit-identical to the batched path by construction.
void ObliviousSortScalar(Protocol2PC* proto, SharedRows* rows, size_t key_col,
                         bool ascending);
void ObliviousSortLexScalar(Protocol2PC* proto, SharedRows* rows,
                            size_t major_col, size_t minor_col,
                            bool ascending);

/// Returns the number of compare-exchanges the network performs for `n` rows
/// (exposed for cost analysis and tests).
uint64_t SortNetworkCompareExchanges(size_t n);

/// Per-layer compare-exchange counts of the n-row network, in execution
/// order. Sums to SortNetworkCompareExchanges(n); drives the bench
/// batch-size histogram and the layer property tests.
std::vector<uint64_t> SortNetworkLayerSizes(size_t n);

/// Materializes the network's layers as explicit pair lists (test access:
/// the layer-disjointness and scalar-order properties are asserted on it).
std::vector<std::vector<RowPair>> SortNetworkLayers(size_t n);

}  // namespace incshrink
