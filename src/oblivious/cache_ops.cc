#include "src/oblivious/cache_ops.h"

#include <algorithm>

#include "src/oblivious/formats.h"
#include "src/oblivious/shuffle.h"
#include "src/oblivious/sort.h"

namespace incshrink {

SharedRows ObliviousCacheRead(Protocol2PC* proto, SharedRows* cache,
                              size_t read_size) {
  // Fig. 3: oblivious sort moves all real tuples to the head (FIFO order),
  // dummies to the tail; then cut off the first `read_size` elements.
  ObliviousSort(proto, cache, kViewSortKeyCol, /*ascending=*/false);
  return TakeSortedPrefix(proto, cache, read_size);
}

SharedRows ObliviousCacheRead(Protocol2PC* proto, SharedRows* cache,
                              size_t read_size, SortAlgorithm algorithm) {
  if (algorithm == SortAlgorithm::kShuffleSort) {
    ObliviousShuffleSort(proto, cache, kViewSortKeyCol, /*ascending=*/false);
    return TakeSortedPrefix(proto, cache, read_size);
  }
  return ObliviousCacheRead(proto, cache, read_size);
}

SharedRows TakeSortedPrefix(Protocol2PC* proto, SharedRows* cache,
                            size_t read_size) {
  read_size = std::min(read_size, cache->size());
  // The fetched shares are re-addressed to the view object: charge transfer.
  proto->AccountBytes(read_size * cache->width() * sizeof(Word) * 2);
  proto->AccountRounds(1);
  return cache->SplitPrefix(read_size);
}

SharedRows CacheFlush(Protocol2PC* proto, SharedRows* cache,
                      size_t flush_size) {
  ObliviousSort(proto, cache, kViewSortKeyCol, /*ascending=*/false);
  return TakeFlushPrefix(proto, cache, flush_size);
}

SharedRows CacheFlush(Protocol2PC* proto, SharedRows* cache,
                      size_t flush_size, SortAlgorithm algorithm) {
  if (algorithm == SortAlgorithm::kShuffleSort) {
    // Any secret permutation suffices here: the cut is public-size and a
    // flush recycles (drops) the suffix anyway, so full key order buys
    // nothing. One Waksman shuffle replaces the whole sorting network.
    ObliviousRandomPermute(proto, cache);
    return TakeFlushPrefix(proto, cache, flush_size);
  }
  return CacheFlush(proto, cache, flush_size);
}

SharedRows TakeFlushPrefix(Protocol2PC* proto, SharedRows* cache,
                           size_t flush_size) {
  flush_size = std::min(flush_size, cache->size());
  proto->AccountBytes(flush_size * cache->width() * sizeof(Word) * 2);
  proto->AccountRounds(1);
  SharedRows fetched = cache->SplitPrefix(flush_size);
  cache->Clear();  // recycle the remaining array (frees the memory space)
  return fetched;
}

uint32_t CountRealInside(Protocol2PC* proto, const SharedRows& rows) {
  const WordShares sum = proto->SumColumn(rows, kViewIsViewCol);
  return proto->RecoverInside(sum);
}

}  // namespace incshrink
