#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/secret/share.h"
#include "src/secret/shared_rows.h"

namespace incshrink {

/// Column conventions for secret-shared row blocks.
///
/// Two row formats flow through the system:
///
/// 1. **Source rows** — the outsourced encoding of one logical record
///    (a row of Sales/Returns/Allegation/Award). Uploaded by owners in
///    fixed-size, dummy-padded batches.
/// 2. **View rows** — entries of the secure cache and the materialized view,
///    produced by the truncated transformation (join/filter output).

// --- Source row columns -----------------------------------------------------
inline constexpr size_t kSrcValidCol = 0;    ///< 1 = real record, 0 = padding.
inline constexpr size_t kSrcKeyCol = 1;      ///< Join key.
inline constexpr size_t kSrcDateCol = 2;     ///< Event date (days).
inline constexpr size_t kSrcRidCol = 3;      ///< Unique record id.
inline constexpr size_t kSrcPayloadCol = 4;  ///< Opaque payload.
inline constexpr size_t kSrcWidth = 5;

// --- View/cache row columns --------------------------------------------------
inline constexpr size_t kViewIsViewCol = 0;   ///< 1 = real view entry.
inline constexpr size_t kViewSortKeyCol = 1;  ///< Cache ordering key.
inline constexpr size_t kViewKeyCol = 2;      ///< Join key of the pair.
inline constexpr size_t kViewDate1Col = 3;    ///< T1-side event date.
inline constexpr size_t kViewDate2Col = 4;    ///< T2-side event date.
inline constexpr size_t kViewRid1Col = 5;     ///< T1-side record id.
inline constexpr size_t kViewRid2Col = 6;     ///< T2-side record id.
inline constexpr size_t kViewWidth = 7;

/// Builds the cache ordering key for a view/dummy row. Sorting *descending*
/// by this key realizes the paper's Figure-3 cache read: all real tuples
/// move ahead of all dummies, and among real tuples older entries (smaller
/// insertion sequence) come first, so deferred data is synchronized FIFO.
///
/// The insertion sequence is 64-bit so the counter itself never wraps; a
/// dummy row's relative order is irrelevant, so dummies take the single
/// reserved key 0 and real rows map onto the full remaining 32-bit range
/// [1, 2^32 - 1], strictly decreasing in `seq`. Real rows therefore always
/// precede dummies, and FIFO among real rows is exact as long as fewer than
/// 2^32 - 1 rows coexist in (or are appended across the lifetime of) one
/// cache between full drains — the key cycles after 2^32 - 1 insertions.
/// (The previous uint32_t sequence both wrapped at 2^31 via its mask and
/// aliased outright once the counter overflowed at 2^32.)
inline Word MakeCacheSortKey(bool is_view, uint64_t seq) {
  if (!is_view) return 0;
  return 0xFFFFFFFFu - static_cast<Word>(seq % 0xFFFFFFFFull);
}

/// Appends a dummy (isView = 0) view-format row with random payload; used to
/// pad transform outputs up to their public size bound.
inline void AppendDummyViewRow(SharedRows* rows, Rng* rng, uint64_t* seq) {
  std::vector<Word> row(kViewWidth);
  row[kViewIsViewCol] = 0;
  row[kViewSortKeyCol] = MakeCacheSortKey(false, (*seq)++);
  for (size_t c = kViewKeyCol; c < kViewWidth; ++c) row[c] = rng->Next32();
  rows->AppendSecretRow(row, rng);
}

}  // namespace incshrink
