#include "src/mpc/protocol.h"

#include <algorithm>
#include <cmath>

#include "src/common/fixed_point.h"
#include "src/common/logging.h"

namespace incshrink {

namespace {

/// AND-gate cost of a fixed-point natural-log circuit plus the scale
/// multiplication used by joint noise generation. A 32-bit fixed-point log
/// via polynomial approximation costs a few multiplications; 5 muls at w^2
/// gates each is a representative garbled-circuit figure.
constexpr uint64_t kJointNoiseAndGates = 5 * kWordBits * kWordBits;

}  // namespace

Protocol2PC::Protocol2PC(Party* s0, Party* s1, CostModel model)
    : s0_(s0), s1_(s1), model_(model),
      // The internal resharing stream is seeded from randomness contributed
      // by BOTH parties, so neither can predict it alone (Appendix A.2).
      internal_rng_((static_cast<uint64_t>(s0->ContributeRandomWord()) << 32) ^
                    s1->ContributeRandomWord() ^ 0xA5A5A5A5DEADBEEFull) {}

WordShares Protocol2PC::Reshare(Word value) {
  const Word mask = internal_rng_.Next32();
  return WordShares{mask, static_cast<Word>(value ^ mask)};
}

WordShares Protocol2PC::FreshShare(Word value) {
  // Each server contributes z_i; c0 = z0 ^ z1, c1 = c0 ^ value. Two private
  // inputs of one word each.
  const Word z0 = s0_->ContributeRandomWord();
  const Word z1 = s1_->ContributeRandomWord();
  AccountBytes(2 * sizeof(Word));
  AccountRounds(1);
  const Word c0 = z0 ^ z1;
  return WordShares{c0, static_cast<Word>(c0 ^ value)};
}

Word Protocol2PC::Reveal(const WordShares& x) {
  AccountBytes(2 * sizeof(Word));
  AccountRounds(1);
  return x.s0 ^ x.s1;
}

WordShares Protocol2PC::Xor(const WordShares& a, const WordShares& b) {
  AccountXorGates(kWordBits);
  // Free-XOR: computed locally on shares, no fresh randomness needed.
  return WordShares{static_cast<Word>(a.s0 ^ b.s0),
                    static_cast<Word>(a.s1 ^ b.s1)};
}

WordShares Protocol2PC::Add(const WordShares& a, const WordShares& b) {
  AccountAndGates(kWordBits);
  return Reshare(RecoverInside(a) + RecoverInside(b));
}

WordShares Protocol2PC::Sub(const WordShares& a, const WordShares& b) {
  AccountAndGates(kWordBits);
  return Reshare(RecoverInside(a) - RecoverInside(b));
}

WordShares Protocol2PC::Mul(const WordShares& a, const WordShares& b) {
  AccountAndGates(kWordBits * kWordBits);
  return Reshare(RecoverInside(a) * RecoverInside(b));
}

WordShares Protocol2PC::LessThan(const WordShares& a, const WordShares& b) {
  AccountAndGates(kWordBits);
  // oblivious-ok: ideal-functionality gate — comparison cost charged above,
  // result re-shared; never observable as plaintext
  return Reshare(RecoverInside(a) < RecoverInside(b) ? 1 : 0);
}

WordShares Protocol2PC::Equal(const WordShares& a, const WordShares& b) {
  AccountAndGates(kWordBits);
  // oblivious-ok: ideal-functionality gate — equality cost charged above,
  // result re-shared
  return Reshare(RecoverInside(a) == RecoverInside(b) ? 1 : 0);
}

WordShares Protocol2PC::Mux(const WordShares& cond, const WordShares& a,
                            const WordShares& b) {
  AccountAndGates(kWordBits);
  const Word c = RecoverInside(cond);
  INCSHRINK_CHECK(c == 0 || c == 1);
  // oblivious-ok: ideal-functionality mux — selection cost charged above,
  // both arms recovered unconditionally, result re-shared
  return Reshare(c ? RecoverInside(a) : RecoverInside(b));
}

WordShares Protocol2PC::And(const WordShares& a, const WordShares& b) {
  AccountAndGates(1);
  return Reshare((RecoverInside(a) & RecoverInside(b)) & 1);
}

WordShares Protocol2PC::Or(const WordShares& a, const WordShares& b) {
  AccountAndGates(1);
  return Reshare((RecoverInside(a) | RecoverInside(b)) & 1);
}

WordShares Protocol2PC::Not(const WordShares& a) {
  AccountXorGates(1);
  return Reshare((RecoverInside(a) ^ 1) & 1);
}

WordShares Protocol2PC::RowWord(const SharedRows& rows, size_t row,
                                size_t col) const {
  return WordShares{rows.share0_at(row, col), rows.share1_at(row, col)};
}

void Protocol2PC::SetRowWord(SharedRows* rows, size_t row, size_t col,
                             const WordShares& v) {
  rows->set_share0_at(row, col, v.s0);
  rows->set_share1_at(row, col, v.s1);
}

void Protocol2PC::MuxSwapRows(SharedRows* rows, size_t i, size_t j,
                              const WordShares& swap) {
  const size_t width = rows->width();
  // XOR-swap circuit: per payload bit, one AND with the swap bit.
  AccountAndGates(width * kWordBits);
  const Word do_swap = RecoverInside(swap) & 1;
  for (size_t c = 0; c < width; ++c) {
    const Word a = rows->share0_at(i, c) ^ rows->share1_at(i, c);
    const Word b = rows->share0_at(j, c) ^ rows->share1_at(j, c);
    // oblivious-ok: ideal-functionality XOR-swap — per-bit AND cost charged
    // above; both rows rewritten with fresh shares either way
    const Word new_i = do_swap ? b : a;
    // oblivious-ok: same site, second arm of the swap
    const Word new_j = do_swap ? a : b;
    const WordShares si = Reshare(new_i);
    const WordShares sj = Reshare(new_j);
    rows->set_share0_at(i, c, si.s0);
    rows->set_share1_at(i, c, si.s1);
    rows->set_share0_at(j, c, sj.s0);
    rows->set_share1_at(j, c, sj.s1);
  }
}

void Protocol2PC::CompareExchangeRows(SharedRows* rows, size_t i, size_t j,
                                      size_t key_col, bool ascending) {
  INCSHRINK_CHECK_LT(i, j);
  AccountAndGates(kWordBits);  // key comparison
  const Word ki = rows->share0_at(i, key_col) ^ rows->share1_at(i, key_col);
  const Word kj = rows->share0_at(j, key_col) ^ rows->share1_at(j, key_col);
  const bool out_of_order = ascending ? (kj < ki) : (ki < kj);
  // oblivious-ok: ideal-functionality compare-exchange — comparison cost
  // charged above; the swap itself runs the unconditional XOR-swap circuit
  MuxSwapRows(rows, i, j, Reshare(out_of_order ? 1 : 0));
}

void Protocol2PC::CompareExchangeRowsLex(SharedRows* rows, size_t i, size_t j,
                                         size_t major_col, size_t minor_col,
                                         bool ascending) {
  INCSHRINK_CHECK_LT(i, j);
  // Two comparisons + one equality + combine gates.
  AccountAndGates(3 * kWordBits + 2);
  const Word mi = rows->share0_at(i, major_col) ^ rows->share1_at(i, major_col);
  const Word mj = rows->share0_at(j, major_col) ^ rows->share1_at(j, major_col);
  const Word ni = rows->share0_at(i, minor_col) ^ rows->share1_at(i, minor_col);
  const Word nj = rows->share0_at(j, minor_col) ^ rows->share1_at(j, minor_col);
  const bool i_greater = mi > mj || (mi == mj && ni > nj);
  const bool j_greater = mj > mi || (mj == mi && nj > ni);
  const bool out_of_order = ascending ? i_greater : j_greater;
  // oblivious-ok: ideal-functionality lex compare-exchange — comparison cost
  // charged above; swap runs the unconditional XOR-swap circuit
  MuxSwapRows(rows, i, j, Reshare(out_of_order ? 1 : 0));
}

WordShares Protocol2PC::SumColumn(const SharedRows& rows, size_t col) {
  // n-1 ripple-carry additions.
  if (!rows.empty()) AccountAndGates((rows.size() - 1) * kWordBits);
  Word sum = 0;
  for (size_t r = 0; r < rows.size(); ++r) {
    sum += rows.share0_at(r, col) ^ rows.share1_at(r, col);
  }
  return Reshare(sum);
}

// ---------------------------------------------------------------------------
// Batched oblivious primitives
// ---------------------------------------------------------------------------

void Protocol2PC::AccountCompareExchangeBatch(uint64_t ops, size_t width,
                                              bool lex) {
  const uint64_t compare_gates = lex ? 3 * kWordBits + 2 : kWordBits;
  const uint64_t gates = ops * (compare_gates + width * kWordBits);
  AccountAndGates(gates);
  if (batch_trace_enabled_) {
    batch_trace_.push_back({lex ? BatchTraceEvent::Kind::kCompareExchangeLex
                                : BatchTraceEvent::Kind::kCompareExchange,
                            ops, CircuitStats{gates, 0, 0, 0}});
  }
}

void Protocol2PC::CompareExchangeRowsBatch(SharedRows* rows,
                                           const RowPair* pairs, size_t count,
                                           size_t key_col, bool ascending,
                                           const BatchExec& exec) {
  if (count == 0) return;
  const size_t w = rows->width();
  const size_t mask_words = CompareExchangeMaskWords(w);
  AccountCompareExchangeBatch(count, w, /*lex=*/false);
  if (exec.Serial(count)) {
    // Serial fast path: masks drawn inline per site (the exact scalar
    // sequence), register-resident — no layer-sized buffer round-trip.
    for (size_t p = 0; p < count; ++p) {
      CompareExchangeSite(rows, pairs[p].a, pairs[p].b, key_col, ascending);
    }
    return;
  }
  // Pooled path: the apply order is scheduling-dependent, so all masks are
  // pre-drawn in scalar site order first — the only stream-correct option.
  batch_masks_.resize(count * mask_words);
  DrawReshareMasks(batch_masks_.size(), batch_masks_.data());
  const Word* masks = batch_masks_.data();
  const size_t chunk = BatchChunkSize(count, exec.pool->num_threads());
  const size_t num_chunks = (count + chunk - 1) / chunk;
  exec.pool->ParallelFor(num_chunks, [&](size_t c) {
    const size_t end = std::min(count, (c + 1) * chunk);
    for (size_t p = c * chunk; p < end; ++p) {
      ApplyCompareExchange(rows, pairs[p].a, pairs[p].b, key_col, ascending,
                           masks + p * mask_words);
    }
  });
}

void Protocol2PC::CompareExchangeRowsLexBatch(SharedRows* rows,
                                              const RowPair* pairs,
                                              size_t count, size_t major_col,
                                              size_t minor_col, bool ascending,
                                              const BatchExec& exec) {
  if (count == 0) return;
  const size_t w = rows->width();
  const size_t mask_words = CompareExchangeMaskWords(w);
  AccountCompareExchangeBatch(count, w, /*lex=*/true);
  if (exec.Serial(count)) {
    for (size_t p = 0; p < count; ++p) {
      CompareExchangeLexSite(rows, pairs[p].a, pairs[p].b, major_col,
                             minor_col, ascending);
    }
    return;
  }
  batch_masks_.resize(count * mask_words);
  DrawReshareMasks(batch_masks_.size(), batch_masks_.data());
  const Word* masks = batch_masks_.data();
  const size_t chunk = BatchChunkSize(count, exec.pool->num_threads());
  const size_t num_chunks = (count + chunk - 1) / chunk;
  exec.pool->ParallelFor(num_chunks, [&](size_t c) {
    const size_t end = std::min(count, (c + 1) * chunk);
    for (size_t p = c * chunk; p < end; ++p) {
      ApplyCompareExchangeLex(rows, pairs[p].a, pairs[p].b, major_col,
                              minor_col, ascending, masks + p * mask_words);
    }
  });
}

void Protocol2PC::AccountMuxSwapBatch(uint64_t ops, size_t width) {
  const uint64_t gates = ops * width * kWordBits;
  AccountAndGates(gates);
  if (batch_trace_enabled_) {
    batch_trace_.push_back({BatchTraceEvent::Kind::kMuxSwap, ops,
                            CircuitStats{gates, 0, 0, 0}});
  }
}

void Protocol2PC::MuxRowsBatch(SharedRows* rows, const RowPair* pairs,
                               const WordShares* swap_bits, size_t count,
                               const BatchExec& exec) {
  if (count == 0) return;
  const size_t w = rows->width();
  const size_t mask_words = MuxSwapMaskWords(w);
  AccountMuxSwapBatch(count, w);
  if (exec.Serial(count)) {
    for (size_t p = 0; p < count; ++p) {
      const Word bit = RecoverInside(swap_bits[p]) & 1;
      MuxSwapSite(rows, pairs[p].a, pairs[p].b, bit != 0);
    }
    return;
  }
  batch_masks_.resize(count * mask_words);
  DrawReshareMasks(batch_masks_.size(), batch_masks_.data());
  const Word* masks = batch_masks_.data();
  const auto site = [&](size_t p) {
    const Word bit = RecoverInside(swap_bits[p]) & 1;
    ApplyMuxSwap(rows, pairs[p].a, pairs[p].b, bit != 0,
                 masks + p * mask_words);
  };
  const size_t chunk = BatchChunkSize(count, exec.pool->num_threads());
  const size_t num_chunks = (count + chunk - 1) / chunk;
  exec.pool->ParallelFor(num_chunks, [&](size_t c) {
    const size_t end = std::min(count, (c + 1) * chunk);
    for (size_t p = c * chunk; p < end; ++p) site(p);
  });
}

void Protocol2PC::CountWhereBatch(const CountWhereTask* tasks, size_t count,
                                  WordShares* out, const BatchExec& exec) {
  if (count == 0) return;
  uint64_t gates = 0;
  size_t total_rows = 0;
  for (size_t k = 0; k < count; ++k) {
    // Per row: predicate circuit + AND with the flag + ripple-carry
    // accumulate — the exact scalar ObliviousCountWhere charge.
    gates += tasks[k].rows->size() *
             (tasks[k].pred_and_gates_per_row + 1 + kWordBits);
    total_rows += tasks[k].rows->size();
  }
  AccountAndGates(gates);
  if (batch_trace_enabled_) {
    batch_trace_.push_back({BatchTraceEvent::Kind::kCountWhere, count,
                            CircuitStats{gates, 0, 0, 0}});
  }
  // One fresh-share mask per task, drawn in task order (== the scalar
  // ShareWord sequence).
  batch_masks_.resize(count);
  DrawReshareMasks(count, batch_masks_.data());
  const auto task = [&](size_t k) {
    const SharedRows& rows = *tasks[k].rows;
    const size_t flag_col = tasks[k].flag_col;
    const auto* pred = tasks[k].pred;
    std::vector<Word> scratch(rows.width());
    Word tally = 0;
    for (size_t r = 0; r < rows.size(); ++r) {
      for (size_t c = 0; c < rows.width(); ++c)
        scratch[c] = rows.share0_at(r, c) ^ rows.share1_at(r, c);
      // oblivious-ok: ideal-functionality COUNT — the per-row predicate +
      // accumulate circuit is charged for every row above; the tally is
      // re-shared, never revealed
      if ((scratch[flag_col] & 1) && (pred == nullptr || (*pred)(scratch)))
        ++tally;
    }
    const Word mask = batch_masks_[k];
    out[k] = WordShares{mask, static_cast<Word>(tally ^ mask)};
  };
  // Parallelism is per task (tasks vary in size, so the BatchExec
  // threshold is measured in total scanned rows, not task count).
  if (exec.Serial(total_rows) || count < 2) {
    for (size_t k = 0; k < count; ++k) task(k);
    return;
  }
  exec.pool->ParallelFor(count, task);
}

void Protocol2PC::EnableBatchTrace(bool on) {
  batch_trace_enabled_ = on;
  // Disabling only stops recording — the collected trace stays readable.
  if (on) batch_trace_.clear();
}

double Protocol2PC::JointLaplace(double scale) {
  INCSHRINK_CHECK_GT(scale, 0.0);
  const Word z0 = s0_->ContributeRandomWord();
  const Word z1 = s1_->ContributeRandomWord();
  AccountBytes(2 * sizeof(Word));
  AccountRounds(1);
  AccountAndGates(kJointNoiseAndGates);
  const Word z = z0 ^ z1;
  const double r = FixedPointOpenUnit(z);  // in (0, 1)
  const double sign = SignFromMsb(z);
  // scale * ln(r) <= 0 and |scale * ln(r)| ~ Exp(scale), so the product with
  // the uniform sign bit is distributed exactly Lap(0, scale).
  return scale * std::log(r) * sign;
}

}  // namespace incshrink
