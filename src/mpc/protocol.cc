#include "src/mpc/protocol.h"

#include <cmath>

#include "src/common/fixed_point.h"
#include "src/common/logging.h"

namespace incshrink {

namespace {

/// AND-gate cost of a fixed-point natural-log circuit plus the scale
/// multiplication used by joint noise generation. A 32-bit fixed-point log
/// via polynomial approximation costs a few multiplications; 5 muls at w^2
/// gates each is a representative garbled-circuit figure.
constexpr uint64_t kJointNoiseAndGates = 5 * kWordBits * kWordBits;

}  // namespace

Protocol2PC::Protocol2PC(Party* s0, Party* s1, CostModel model)
    : s0_(s0), s1_(s1), model_(model),
      // The internal resharing stream is seeded from randomness contributed
      // by BOTH parties, so neither can predict it alone (Appendix A.2).
      internal_rng_((static_cast<uint64_t>(s0->ContributeRandomWord()) << 32) ^
                    s1->ContributeRandomWord() ^ 0xA5A5A5A5DEADBEEFull) {}

WordShares Protocol2PC::Reshare(Word value) {
  const Word mask = internal_rng_.Next32();
  return WordShares{mask, static_cast<Word>(value ^ mask)};
}

WordShares Protocol2PC::FreshShare(Word value) {
  // Each server contributes z_i; c0 = z0 ^ z1, c1 = c0 ^ value. Two private
  // inputs of one word each.
  const Word z0 = s0_->ContributeRandomWord();
  const Word z1 = s1_->ContributeRandomWord();
  AccountBytes(2 * sizeof(Word));
  AccountRounds(1);
  const Word c0 = z0 ^ z1;
  return WordShares{c0, static_cast<Word>(c0 ^ value)};
}

Word Protocol2PC::Reveal(const WordShares& x) {
  AccountBytes(2 * sizeof(Word));
  AccountRounds(1);
  return x.s0 ^ x.s1;
}

WordShares Protocol2PC::Xor(const WordShares& a, const WordShares& b) {
  AccountXorGates(kWordBits);
  // Free-XOR: computed locally on shares, no fresh randomness needed.
  return WordShares{static_cast<Word>(a.s0 ^ b.s0),
                    static_cast<Word>(a.s1 ^ b.s1)};
}

WordShares Protocol2PC::Add(const WordShares& a, const WordShares& b) {
  AccountAndGates(kWordBits);
  return Reshare(RecoverInside(a) + RecoverInside(b));
}

WordShares Protocol2PC::Sub(const WordShares& a, const WordShares& b) {
  AccountAndGates(kWordBits);
  return Reshare(RecoverInside(a) - RecoverInside(b));
}

WordShares Protocol2PC::Mul(const WordShares& a, const WordShares& b) {
  AccountAndGates(kWordBits * kWordBits);
  return Reshare(RecoverInside(a) * RecoverInside(b));
}

WordShares Protocol2PC::LessThan(const WordShares& a, const WordShares& b) {
  AccountAndGates(kWordBits);
  return Reshare(RecoverInside(a) < RecoverInside(b) ? 1 : 0);
}

WordShares Protocol2PC::Equal(const WordShares& a, const WordShares& b) {
  AccountAndGates(kWordBits);
  return Reshare(RecoverInside(a) == RecoverInside(b) ? 1 : 0);
}

WordShares Protocol2PC::Mux(const WordShares& cond, const WordShares& a,
                            const WordShares& b) {
  AccountAndGates(kWordBits);
  const Word c = RecoverInside(cond);
  INCSHRINK_CHECK(c == 0 || c == 1);
  return Reshare(c ? RecoverInside(a) : RecoverInside(b));
}

WordShares Protocol2PC::And(const WordShares& a, const WordShares& b) {
  AccountAndGates(1);
  return Reshare((RecoverInside(a) & RecoverInside(b)) & 1);
}

WordShares Protocol2PC::Or(const WordShares& a, const WordShares& b) {
  AccountAndGates(1);
  return Reshare((RecoverInside(a) | RecoverInside(b)) & 1);
}

WordShares Protocol2PC::Not(const WordShares& a) {
  AccountXorGates(1);
  return Reshare((RecoverInside(a) ^ 1) & 1);
}

WordShares Protocol2PC::RowWord(const SharedRows& rows, size_t row,
                                size_t col) const {
  return WordShares{rows.share0_at(row, col), rows.share1_at(row, col)};
}

void Protocol2PC::SetRowWord(SharedRows* rows, size_t row, size_t col,
                             const WordShares& v) {
  rows->set_share0_at(row, col, v.s0);
  rows->set_share1_at(row, col, v.s1);
}

void Protocol2PC::MuxSwapRows(SharedRows* rows, size_t i, size_t j,
                              const WordShares& swap) {
  const size_t width = rows->width();
  // XOR-swap circuit: per payload bit, one AND with the swap bit.
  AccountAndGates(width * kWordBits);
  const Word do_swap = RecoverInside(swap) & 1;
  for (size_t c = 0; c < width; ++c) {
    const Word a = rows->share0_at(i, c) ^ rows->share1_at(i, c);
    const Word b = rows->share0_at(j, c) ^ rows->share1_at(j, c);
    const Word new_i = do_swap ? b : a;
    const Word new_j = do_swap ? a : b;
    const WordShares si = Reshare(new_i);
    const WordShares sj = Reshare(new_j);
    rows->set_share0_at(i, c, si.s0);
    rows->set_share1_at(i, c, si.s1);
    rows->set_share0_at(j, c, sj.s0);
    rows->set_share1_at(j, c, sj.s1);
  }
}

void Protocol2PC::CompareExchangeRows(SharedRows* rows, size_t i, size_t j,
                                      size_t key_col, bool ascending) {
  INCSHRINK_CHECK_LT(i, j);
  AccountAndGates(kWordBits);  // key comparison
  const Word ki = rows->share0_at(i, key_col) ^ rows->share1_at(i, key_col);
  const Word kj = rows->share0_at(j, key_col) ^ rows->share1_at(j, key_col);
  const bool out_of_order = ascending ? (kj < ki) : (ki < kj);
  MuxSwapRows(rows, i, j, Reshare(out_of_order ? 1 : 0));
}

void Protocol2PC::CompareExchangeRowsLex(SharedRows* rows, size_t i, size_t j,
                                         size_t major_col, size_t minor_col,
                                         bool ascending) {
  INCSHRINK_CHECK_LT(i, j);
  // Two comparisons + one equality + combine gates.
  AccountAndGates(3 * kWordBits + 2);
  const Word mi = rows->share0_at(i, major_col) ^ rows->share1_at(i, major_col);
  const Word mj = rows->share0_at(j, major_col) ^ rows->share1_at(j, major_col);
  const Word ni = rows->share0_at(i, minor_col) ^ rows->share1_at(i, minor_col);
  const Word nj = rows->share0_at(j, minor_col) ^ rows->share1_at(j, minor_col);
  const bool i_greater = mi > mj || (mi == mj && ni > nj);
  const bool j_greater = mj > mi || (mj == mi && nj > ni);
  const bool out_of_order = ascending ? i_greater : j_greater;
  MuxSwapRows(rows, i, j, Reshare(out_of_order ? 1 : 0));
}

WordShares Protocol2PC::SumColumn(const SharedRows& rows, size_t col) {
  // n-1 ripple-carry additions.
  if (rows.size() > 0) AccountAndGates((rows.size() - 1) * kWordBits);
  Word sum = 0;
  for (size_t r = 0; r < rows.size(); ++r) {
    sum += rows.share0_at(r, col) ^ rows.share1_at(r, col);
  }
  return Reshare(sum);
}

double Protocol2PC::JointLaplace(double scale) {
  INCSHRINK_CHECK_GT(scale, 0.0);
  const Word z0 = s0_->ContributeRandomWord();
  const Word z1 = s1_->ContributeRandomWord();
  AccountBytes(2 * sizeof(Word));
  AccountRounds(1);
  AccountAndGates(kJointNoiseAndGates);
  const Word z = z0 ^ z1;
  const double r = FixedPointOpenUnit(z);  // in (0, 1)
  const double sign = SignFromMsb(z);
  // scale * ln(r) <= 0 and |scale * ln(r)| ~ Exp(scale), so the product with
  // the uniform sign bit is distributed exactly Lap(0, scale).
  return scale * std::log(r) * sign;
}

}  // namespace incshrink
