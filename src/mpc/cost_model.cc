#include "src/mpc/cost_model.h"

namespace incshrink {

CostModel CostModel::Free() {
  CostModel m;
  m.seconds_per_and_gate = 0;
  m.seconds_per_byte = 0;
  m.seconds_per_round = 0;
  m.bytes_per_and_gate = 0;
  return m;
}

CostModel CostModel::EmpLikeLan() { return CostModel(); }

}  // namespace incshrink
