#pragma once

#include <cstdint>

namespace incshrink {

/// \brief Converts Boolean-circuit work into simulated wall-clock seconds.
///
/// The paper evaluates on EMP-Toolkit garbled circuits (half-gates): XOR
/// gates are free, each AND gate costs two 128-bit ciphertexts of
/// communication plus fixed garbling/evaluation work. This model reproduces
/// that cost structure so every experiment's *relative* timings (Transform vs
/// Shrink vs query; DP vs EP vs NM; scaling curves) have the same shape as
/// the paper's measured numbers.
struct CostModel {
  /// Seconds of garbling+evaluation work per AND gate. Default corresponds
  /// to ~10M AND gates/s, in the ballpark of EMP half-gates on one core.
  double seconds_per_and_gate = 1e-7;

  /// Seconds per byte moved between the two servers. Default corresponds to
  /// a 1 Gb/s LAN link (as in the paper's GCP setup).
  double seconds_per_byte = 8e-9;

  /// Fixed latency charged per communication round (LAN RTT).
  double seconds_per_round = 2e-4;

  /// Bytes of communication per AND gate (half-gates: 2 x 128-bit labels).
  double bytes_per_and_gate = 32.0;

  /// Returns a model with all costs zeroed (for pure functional tests).
  static CostModel Free();

  /// Returns the default EMP-like LAN model described above.
  static CostModel EmpLikeLan();
};

/// \brief Accumulated circuit statistics for a protocol (or protocol phase).
struct CircuitStats {
  uint64_t and_gates = 0;
  uint64_t xor_gates = 0;
  uint64_t bytes = 0;
  uint64_t rounds = 0;

  void Add(const CircuitStats& other) {
    and_gates += other.and_gates;
    xor_gates += other.xor_gates;
    bytes += other.bytes;
    rounds += other.rounds;
  }

  CircuitStats Diff(const CircuitStats& earlier) const {
    return CircuitStats{and_gates - earlier.and_gates,
                        xor_gates - earlier.xor_gates, bytes - earlier.bytes,
                        rounds - earlier.rounds};
  }

  /// Simulated seconds under the given cost model. AND gates also charge
  /// their ciphertext traffic (bytes_per_and_gate), on top of explicit
  /// `bytes` (share transfers, revealed outputs).
  double SimulatedSeconds(const CostModel& model) const {
    const double gate_bytes =
        static_cast<double>(and_gates) * model.bytes_per_and_gate;
    return static_cast<double>(and_gates) * model.seconds_per_and_gate +
           (static_cast<double>(bytes) + gate_bytes) * model.seconds_per_byte +
           static_cast<double>(rounds) * model.seconds_per_round;
  }
};

}  // namespace incshrink
