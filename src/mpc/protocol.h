#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/mpc/cost_model.h"
#include "src/mpc/party.h"
#include "src/secret/share.h"
#include "src/secret/shared_rows.h"

namespace incshrink {

/// Bit width of the ring Z_2^32 used for circuit cost accounting.
inline constexpr uint64_t kWordBits = 32;

/// One compare-exchange / mux-swap site of a batched submission. Pairs in a
/// batch must be pairwise disjoint (no row index appears twice), which is
/// what makes a batch order-free: any evaluation order — including a
/// thread-parallel one — commits the same bits.
struct RowPair {
  uint32_t a = 0;  ///< lower row index
  uint32_t b = 0;  ///< upper row index (a < b)

  bool operator==(const RowPair&) const = default;
};

/// Execution policy of a batched primitive call: whether (and where) a batch
/// may be split across worker threads. Purely a scheduling hint — results
/// are bit-identical with any pool and any threshold, because every batch
/// pre-draws its resharing masks in scalar call order and its sites commit
/// to disjoint rows.
struct BatchExec {
  /// Fork-join pool to split large batches over; null runs the tight serial
  /// kernel on the calling thread.
  ThreadPool* pool = nullptr;
  /// Batches smaller than this stay on the calling thread even when a pool
  /// is available (fork-join overhead would dominate). Config knob
  /// `oblivious_batch_min_layer`.
  size_t min_parallel_ops = 128;

  /// Whether a batch of `ops` sites runs the serial fused kernel: no pool,
  /// a 1-thread pool (nothing to split over — the fused draw+apply path is
  /// strictly faster), or a batch under the threshold.
  bool Serial(size_t ops) const {
    return pool == nullptr || pool->num_threads() <= 1 ||
           ops < min_parallel_ops;
  }
};

/// Splits `count` batch sites into pool chunks. Chunk boundaries are a pure
/// function of (count, threads): scheduling-independent, and since batch
/// sites commit to disjoint rows the chunking never changes a bit. Shared
/// by the single-submission batch APIs and the multi-job sort fusion so
/// both pooled paths chunk identically. 4 chunks per worker keeps the claim
/// counter warm without making the atomic increment a per-site cost.
inline size_t BatchChunkSize(size_t count, int threads) {
  const size_t per_thread =
      (count + static_cast<size_t>(threads) - 1) / static_cast<size_t>(threads);
  return std::max<size_t>(32, (per_thread + 3) / 4);
}

/// One batched COUNT task: count rows of `*rows` whose `flag_col` low bit is
/// set and that satisfy `pred` (null accepts everything). The equivalent
/// per-row predicate circuit is `pred_and_gates_per_row` AND gates.
struct CountWhereTask {
  const SharedRows* rows = nullptr;
  size_t flag_col = 0;
  uint64_t pred_and_gates_per_row = 0;
  const std::function<bool(const std::vector<Word>&)>* pred = nullptr;
};

/// One entry of the (opt-in) batch trace: a batched submission recorded as a
/// single event carrying its exact aggregate circuit cost. The sum of event
/// costs over a phase is bit-identical to the scalar path's running
/// CircuitStats for the same ops — batching amortizes the bookkeeping, it
/// never changes the totals.
struct BatchTraceEvent {
  enum class Kind : uint8_t {
    kCompareExchange,     ///< batched CompareExchangeRows sites
    kCompareExchangeLex,  ///< batched CompareExchangeRowsLex sites
    kMuxSwap,             ///< batched MuxSwapRows sites
    kCountWhere,          ///< batched oblivious COUNT tasks
  };

  Kind kind;
  uint64_t ops;       ///< scalar primitive calls fused into this submission
  CircuitStats cost;  ///< exact aggregate gates/bytes/rounds of the batch
};

/// \brief Simulated semi-honest two-party computation runtime.
///
/// This class plays the role EMP-Toolkit plays in the paper's prototype: it
/// evaluates Boolean-circuit operations over XOR-shared 32-bit words between
/// the two non-colluding servers S0 and S1.
///
/// Simulation model: the functionality of each gate is computed directly on
/// the recovered values (the runtime acts as the ideal functionality), the
/// result is re-shared with fresh randomness derived from both parties'
/// contributed seeds, and the circuit cost (AND gates, communicated bytes,
/// rounds) of the equivalent garbled-circuit protocol is charged to the
/// running `CircuitStats`. Consequently:
///  * each party's local state is always a stream of uniformly random shares
///    (tested in `tests/mpc_test.cc`), and
///  * control flow is data-independent — the same gate trace is produced for
///    any two inputs of equal public size (tested in
///    `tests/oblivious_test.cc`).
///
/// Simulated wall-clock time is obtained by pricing the accumulated stats
/// through a `CostModel`.
class Protocol2PC {
 public:
  Protocol2PC(Party* s0, Party* s1, CostModel model);

  Party* s0() { return s0_; }
  Party* s1() { return s1_; }
  const CostModel& cost_model() const { return model_; }

  // ------------------------------------------------------------------
  // Cost accounting
  // ------------------------------------------------------------------

  const CircuitStats& stats() const { return stats_; }

  /// Returns a snapshot usable with `StatsSince` to meter a phase.
  CircuitStats Snapshot() const { return stats_; }
  CircuitStats StatsSince(const CircuitStats& snap) const {
    return stats_.Diff(snap);
  }
  double SimulatedSeconds() const { return stats_.SimulatedSeconds(model_); }
  double SimulatedSecondsSince(const CircuitStats& snap) const {
    return stats_.Diff(snap).SimulatedSeconds(model_);
  }

  void AccountAndGates(uint64_t n) { stats_.and_gates += n; }
  void AccountXorGates(uint64_t n) { stats_.xor_gates += n; }
  void AccountBytes(uint64_t n) { stats_.bytes += n; }
  void AccountRounds(uint64_t n) { stats_.rounds += n; }

  // ------------------------------------------------------------------
  // Sharing / revealing
  // ------------------------------------------------------------------

  /// Produces a fresh sharing of `value` inside the protocol using
  /// party-contributed randomness (Appendix A.2): c0 = z0 XOR z1,
  /// c1 = c0 XOR value.
  WordShares FreshShare(Word value);

  /// Trivial sharing of a public constant: {v, 0}. Costs nothing.
  static WordShares ConstShare(Word value) { return WordShares{value, 0}; }

  /// Opens a shared value to both parties (each sends its share).
  Word Reveal(const WordShares& x);

  /// Recovers a value inside the protocol without revealing it to the
  /// parties (e.g., Shrink recovering the cardinality counter "internally").
  Word RecoverInside(const WordShares& x) const { return x.s0 ^ x.s1; }

  // ------------------------------------------------------------------
  // Word-level secure operations (all return fresh sharings and charge the
  // garbled-circuit cost of the corresponding 32-bit Boolean circuit).
  // ------------------------------------------------------------------

  WordShares Xor(const WordShares& a, const WordShares& b);  ///< Free-XOR.
  WordShares Add(const WordShares& a, const WordShares& b);
  WordShares Sub(const WordShares& a, const WordShares& b);
  WordShares Mul(const WordShares& a, const WordShares& b);
  /// Unsigned a < b, returned as a sharing of 0/1.
  WordShares LessThan(const WordShares& a, const WordShares& b);
  /// a == b, returned as a sharing of 0/1.
  WordShares Equal(const WordShares& a, const WordShares& b);
  /// cond ? a : b. `cond` must be a sharing of 0/1.
  WordShares Mux(const WordShares& cond, const WordShares& a,
                 const WordShares& b);
  /// Logical AND / OR / NOT of shared 0/1 bits.
  WordShares And(const WordShares& a, const WordShares& b);
  WordShares Or(const WordShares& a, const WordShares& b);
  WordShares Not(const WordShares& a);

  // ------------------------------------------------------------------
  // Row-level secure operations over SharedRows
  // ------------------------------------------------------------------

  /// Reads the sharing of word (row, col).
  WordShares RowWord(const SharedRows& rows, size_t row, size_t col) const;

  /// Writes a sharing into word (row, col).
  void SetRowWord(SharedRows* rows, size_t row, size_t col,
                  const WordShares& v);

  /// Obliviously swaps rows i and j iff the shared bit `swap` is 1, using the
  /// XOR-swap circuit: one AND gate per payload bit.
  void MuxSwapRows(SharedRows* rows, size_t i, size_t j,
                   const WordShares& swap);

  /// Compare-exchange for oblivious sorting networks: orders rows i and j by
  /// the 32-bit key in `key_col` (ascending if `ascending`). Ties keep the
  /// original order. Cost: one comparison + one row mux-swap.
  void CompareExchangeRows(SharedRows* rows, size_t i, size_t j,
                           size_t key_col, bool ascending);

  /// Lexicographic compare-exchange on (major_col, minor_col). Used where a
  /// total deterministic order is required (sorting networks are not stable,
  /// so ties must be broken inside the comparator). Cost: two comparisons,
  /// one equality, two gate-level combines, one row mux-swap.
  void CompareExchangeRowsLex(SharedRows* rows, size_t i, size_t j,
                              size_t major_col, size_t minor_col,
                              bool ascending);

  /// Sums column `col` over all rows (used for oblivious COUNT over isView
  /// bits). Returns a sharing of the sum.
  WordShares SumColumn(const SharedRows& rows, size_t col);

  // ------------------------------------------------------------------
  // Batched oblivious primitives (layer-vectorized execution)
  //
  // Each batch call is bit-identical to issuing its scalar ops in pair
  // order: the resharing masks are pre-drawn from the internal stream in
  // exactly the scalar call order, the per-site kernels are pure functions
  // of (shares, masks), and the aggregate circuit cost is charged once per
  // batch — totals equal to the scalar sum. Because the sites of a batch
  // touch pairwise-disjoint rows, the apply phase may be split across a
  // ThreadPool (BatchExec) without changing a single committed bit.
  // ------------------------------------------------------------------

  /// Words of resharing randomness one mux-swap site consumes.
  static constexpr size_t MuxSwapMaskWords(size_t width) { return 2 * width; }
  /// Words one compare-exchange site consumes (swap bit + row reshares).
  static constexpr size_t CompareExchangeMaskWords(size_t width) {
    return 1 + 2 * width;
  }

  /// Draws `count` words from the internal resharing stream — the exact
  /// sequence the scalar ops would have consumed one Reshare at a time.
  /// This is the *only* entry point batched kernels may take randomness
  /// from (tools/check_no_hidden_entropy.sh enforces the scheduler side).
  /// Inline (with the kernels below): these are the innermost hot loops of
  /// every oblivious sort, and an out-of-line call per word/site erases the
  /// batching win.
  void DrawReshareMasks(size_t count, Word* out) {
    for (size_t i = 0; i < count; ++i) out[i] = internal_rng_.Next32();
  }

  /// Single-key out-of-order predicate shared by the scalar op, the
  /// pre-draw kernel and the inline-draw site kernel: one source of truth
  /// for the comparator the serial and pooled rounds must agree on.
  static bool KeyOutOfOrder(const SharedRows& rows, size_t i, size_t j,
                            size_t key_col, bool ascending) {
    const Word ki = rows.share0_at(i, key_col) ^ rows.share1_at(i, key_col);
    const Word kj = rows.share0_at(j, key_col) ^ rows.share1_at(j, key_col);
    return ascending ? (kj < ki) : (ki < kj);
  }

  /// Lexicographic (major, minor) out-of-order predicate — ditto.
  static bool LexOutOfOrder(const SharedRows& rows, size_t i, size_t j,
                            size_t major_col, size_t minor_col,
                            bool ascending) {
    const Word mi = rows.share0_at(i, major_col) ^ rows.share1_at(i, major_col);
    const Word mj = rows.share0_at(j, major_col) ^ rows.share1_at(j, major_col);
    const Word ni = rows.share0_at(i, minor_col) ^ rows.share1_at(i, minor_col);
    const Word nj = rows.share0_at(j, minor_col) ^ rows.share1_at(j, minor_col);
    const bool i_greater = mi > mj || (mi == mj && ni > nj);
    const bool j_greater = mj > mi || (mj == mi && nj > ni);
    return ascending ? i_greater : j_greater;
  }

  /// Pure mux-swap kernel over MuxSwapMaskWords(width) pre-drawn masks: no
  /// accounting, no randomness, safe to run concurrently with other sites
  /// of the same batch on disjoint rows.
  void ApplyMuxSwap(SharedRows* rows, size_t i, size_t j, bool do_swap,
                    const Word* masks) const {
    MuxSwapImpl(rows, i, j, do_swap,
                [&masks]() { return *masks++; });
  }

  /// Pure compare-exchange kernel over CompareExchangeMaskWords(width)
  /// pre-drawn masks (same concurrency contract as ApplyMuxSwap).
  void ApplyCompareExchange(SharedRows* rows, size_t i, size_t j,
                            size_t key_col, bool ascending,
                            const Word* masks) const {
    const bool out_of_order = KeyOutOfOrder(*rows, i, j, key_col, ascending);
    // masks[0] is the swap-bit reshare the scalar path draws; the batch
    // draws it too (stream alignment) but, like the scalar path, never
    // stores it.
    ApplyMuxSwap(rows, i, j, out_of_order, masks + 1);
  }

  /// Pure lexicographic compare-exchange kernel (same mask layout).
  void ApplyCompareExchangeLex(SharedRows* rows, size_t i, size_t j,
                               size_t major_col, size_t minor_col,
                               bool ascending, const Word* masks) const {
    const bool out_of_order =
        LexOutOfOrder(*rows, i, j, major_col, minor_col, ascending);
    ApplyMuxSwap(rows, i, j, out_of_order, masks + 1);
  }

  // Serial-batch site kernels: the exact scalar data path — resharing
  // masks drawn inline from the internal stream in scalar word order, no
  // scratch buffer — minus the per-op accounting, which the batch already
  // charged in aggregate. These are what make the 1-thread batched path a
  // strict win over the scalar ops (amortized bookkeeping, register-
  // resident masks). Same word-for-word draw sequence as the pre-draw
  // kernels above (one shared swap body, one shared comparator), so serial
  // and pooled rounds commit identical bits.

  /// Mux-swap site with inline draws (scalar MuxSwapRows minus accounting).
  void MuxSwapSite(SharedRows* rows, size_t i, size_t j, bool do_swap) {
    MuxSwapImpl(rows, i, j, do_swap,
                [this]() { return internal_rng_.Next32(); });
  }

  /// Compare-exchange site with inline draws (the swap-bit reshare is
  /// drawn and discarded exactly as the scalar op does).
  void CompareExchangeSite(SharedRows* rows, size_t i, size_t j,
                           size_t key_col, bool ascending) {
    const bool out_of_order = KeyOutOfOrder(*rows, i, j, key_col, ascending);
    internal_rng_.Next32();  // swap-bit reshare (stream alignment)
    MuxSwapSite(rows, i, j, out_of_order);
  }

  /// Lexicographic compare-exchange site with inline draws.
  void CompareExchangeLexSite(SharedRows* rows, size_t i, size_t j,
                              size_t major_col, size_t minor_col,
                              bool ascending) {
    const bool out_of_order =
        LexOutOfOrder(*rows, i, j, major_col, minor_col, ascending);
    internal_rng_.Next32();  // swap-bit reshare (stream alignment)
    MuxSwapSite(rows, i, j, out_of_order);
  }

  /// Charges the exact aggregate cost of `ops` fused (lex) compare-exchange
  /// sites over rows of `width` words and records one batch trace event.
  void AccountCompareExchangeBatch(uint64_t ops, size_t width, bool lex);

  /// Charges the exact aggregate cost of `ops` fused mux-swap sites over
  /// rows of `width` words and records one batch trace event. MuxRowsBatch
  /// charges through this, and so does the permutation-network scheduler
  /// (src/oblivious/shuffle.cc), whose switches are mux-swaps with publicly
  /// programmed control bits: the conditional swap still runs the full
  /// per-bit AND circuit — hiding *whether* each switch crossed is exactly
  /// what keeps the realized permutation secret from the evaluator.
  void AccountMuxSwapBatch(uint64_t ops, size_t width);

  /// Batched CompareExchangeRows over disjoint index pairs — bit-identical
  /// to calling the scalar op once per pair in order.
  void CompareExchangeRowsBatch(SharedRows* rows, const RowPair* pairs,
                                size_t count, size_t key_col, bool ascending,
                                const BatchExec& exec = {});

  /// Batched CompareExchangeRowsLex over disjoint index pairs.
  void CompareExchangeRowsLexBatch(SharedRows* rows, const RowPair* pairs,
                                   size_t count, size_t major_col,
                                   size_t minor_col, bool ascending,
                                   const BatchExec& exec = {});

  /// Batched MuxSwapRows: obliviously swaps each disjoint pair iff its
  /// shared `swap_bits` entry is 1. Bit-identical to the scalar sequence.
  void MuxRowsBatch(SharedRows* rows, const RowPair* pairs,
                    const WordShares* swap_bits, size_t count,
                    const BatchExec& exec = {});

  /// Batched oblivious COUNT: evaluates `count` CountWhereTasks with one
  /// aggregate accounting event; `out[k]` receives task k's fresh sharing.
  /// Bit-identical to per-task ObliviousCountWhere in task order. Tasks
  /// vary in size, so `exec.min_parallel_ops` is measured in total scanned
  /// rows here (parallelism itself is per task).
  void CountWhereBatch(const CountWhereTask* tasks, size_t count,
                       WordShares* out, const BatchExec& exec = {});

  /// Opt-in recording of batched submissions (off by default: long runs
  /// would otherwise accumulate unbounded trace state). Enabling clears any
  /// previous trace.
  void EnableBatchTrace(bool on);
  const std::vector<BatchTraceEvent>& batch_trace() const {
    return batch_trace_;
  }

  // ------------------------------------------------------------------
  // Joint noise generation (paper Alg. 2 lines 4-6 / Section 5.2)
  // ------------------------------------------------------------------

  /// Samples Lap(scale) with randomness contributed by both servers:
  /// z = z0 XOR z1, r = fixed_point(z) in (0,1),
  /// noise = scale * ln(r) * sign(msb(z)).
  /// Neither party alone can predict or bias the noise as long as the other
  /// is honest. Charges the cost of a fixed-point log circuit.
  double JointLaplace(double scale);

  /// Internal combined randomness (seeded from both parties). Exposed for
  /// oblivious operators that need in-protocol random choices (e.g. dummy
  /// payload generation during padding).
  Rng* internal_rng() { return &internal_rng_; }

  /// Checkpoint-restore path: overwrites the accumulated circuit statistics
  /// with snapshot values, so per-step cost deltas (Snapshot()/CostSince())
  /// in a restored run match the uninterrupted run exactly.
  void RestoreStats(const CircuitStats& stats) { stats_ = stats; }

 private:
  /// The one oblivious XOR-swap body both kernel families share; `mask_fn`
  /// supplies the 2*width resharing masks — pre-drawn array reads for the
  /// pooled Apply* kernels, inline internal-stream draws for the serial
  /// *Site kernels. Same word order either way, so both commit identical
  /// bits for identical streams.
  template <typename MaskFn>
  static void MuxSwapImpl(SharedRows* rows, size_t i, size_t j, bool do_swap,
                          MaskFn&& mask_fn) {
    const size_t w = rows->width();
    Word* s0 = rows->mutable_share0();
    Word* s1 = rows->mutable_share1();
    Word* r0i = s0 + i * w;
    Word* r1i = s1 + i * w;
    Word* r0j = s0 + j * w;
    Word* r1j = s1 + j * w;
    for (size_t c = 0; c < w; ++c) {
      const Word a = r0i[c] ^ r1i[c];
      const Word b = r0j[c] ^ r1j[c];
      // oblivious-ok: ideal-functionality XOR-swap kernel — the batch charged
      // the per-bit AND cost in aggregate; both rows get fresh masks either way
      const Word new_i = do_swap ? b : a;
      // oblivious-ok: same site, second arm of the swap
      const Word new_j = do_swap ? a : b;
      const Word mi = mask_fn();
      const Word mj = mask_fn();
      r0i[c] = mi;
      r1i[c] = new_i ^ mi;
      r0j[c] = mj;
      r1j[c] = new_j ^ mj;
    }
  }

  /// Re-shares a plaintext word with protocol-internal fresh randomness.
  WordShares Reshare(Word value);

  Party* s0_;
  Party* s1_;
  CostModel model_;
  CircuitStats stats_;
  Rng internal_rng_;
  bool batch_trace_enabled_ = false;
  std::vector<BatchTraceEvent> batch_trace_;
  /// Reusable mask buffer for batched submissions (allocation-free inner
  /// loops once warmed). The protocol is single-submitter by contract, so
  /// one buffer suffices.
  std::vector<Word> batch_masks_;
};

}  // namespace incshrink
