#pragma once

#include <cstdint>

#include "src/common/rng.h"
#include "src/mpc/cost_model.h"
#include "src/mpc/party.h"
#include "src/secret/share.h"
#include "src/secret/shared_rows.h"

namespace incshrink {

/// Bit width of the ring Z_2^32 used for circuit cost accounting.
inline constexpr uint64_t kWordBits = 32;

/// \brief Simulated semi-honest two-party computation runtime.
///
/// This class plays the role EMP-Toolkit plays in the paper's prototype: it
/// evaluates Boolean-circuit operations over XOR-shared 32-bit words between
/// the two non-colluding servers S0 and S1.
///
/// Simulation model: the functionality of each gate is computed directly on
/// the recovered values (the runtime acts as the ideal functionality), the
/// result is re-shared with fresh randomness derived from both parties'
/// contributed seeds, and the circuit cost (AND gates, communicated bytes,
/// rounds) of the equivalent garbled-circuit protocol is charged to the
/// running `CircuitStats`. Consequently:
///  * each party's local state is always a stream of uniformly random shares
///    (tested in `tests/mpc_test.cc`), and
///  * control flow is data-independent — the same gate trace is produced for
///    any two inputs of equal public size (tested in
///    `tests/oblivious_test.cc`).
///
/// Simulated wall-clock time is obtained by pricing the accumulated stats
/// through a `CostModel`.
class Protocol2PC {
 public:
  Protocol2PC(Party* s0, Party* s1, CostModel model);

  Party* s0() { return s0_; }
  Party* s1() { return s1_; }
  const CostModel& cost_model() const { return model_; }

  // ------------------------------------------------------------------
  // Cost accounting
  // ------------------------------------------------------------------

  const CircuitStats& stats() const { return stats_; }

  /// Returns a snapshot usable with `StatsSince` to meter a phase.
  CircuitStats Snapshot() const { return stats_; }
  CircuitStats StatsSince(const CircuitStats& snap) const {
    return stats_.Diff(snap);
  }
  double SimulatedSeconds() const { return stats_.SimulatedSeconds(model_); }
  double SimulatedSecondsSince(const CircuitStats& snap) const {
    return stats_.Diff(snap).SimulatedSeconds(model_);
  }

  void AccountAndGates(uint64_t n) { stats_.and_gates += n; }
  void AccountXorGates(uint64_t n) { stats_.xor_gates += n; }
  void AccountBytes(uint64_t n) { stats_.bytes += n; }
  void AccountRounds(uint64_t n) { stats_.rounds += n; }

  // ------------------------------------------------------------------
  // Sharing / revealing
  // ------------------------------------------------------------------

  /// Produces a fresh sharing of `value` inside the protocol using
  /// party-contributed randomness (Appendix A.2): c0 = z0 XOR z1,
  /// c1 = c0 XOR value.
  WordShares FreshShare(Word value);

  /// Trivial sharing of a public constant: {v, 0}. Costs nothing.
  static WordShares ConstShare(Word value) { return WordShares{value, 0}; }

  /// Opens a shared value to both parties (each sends its share).
  Word Reveal(const WordShares& x);

  /// Recovers a value inside the protocol without revealing it to the
  /// parties (e.g., Shrink recovering the cardinality counter "internally").
  Word RecoverInside(const WordShares& x) const { return x.s0 ^ x.s1; }

  // ------------------------------------------------------------------
  // Word-level secure operations (all return fresh sharings and charge the
  // garbled-circuit cost of the corresponding 32-bit Boolean circuit).
  // ------------------------------------------------------------------

  WordShares Xor(const WordShares& a, const WordShares& b);  ///< Free-XOR.
  WordShares Add(const WordShares& a, const WordShares& b);
  WordShares Sub(const WordShares& a, const WordShares& b);
  WordShares Mul(const WordShares& a, const WordShares& b);
  /// Unsigned a < b, returned as a sharing of 0/1.
  WordShares LessThan(const WordShares& a, const WordShares& b);
  /// a == b, returned as a sharing of 0/1.
  WordShares Equal(const WordShares& a, const WordShares& b);
  /// cond ? a : b. `cond` must be a sharing of 0/1.
  WordShares Mux(const WordShares& cond, const WordShares& a,
                 const WordShares& b);
  /// Logical AND / OR / NOT of shared 0/1 bits.
  WordShares And(const WordShares& a, const WordShares& b);
  WordShares Or(const WordShares& a, const WordShares& b);
  WordShares Not(const WordShares& a);

  // ------------------------------------------------------------------
  // Row-level secure operations over SharedRows
  // ------------------------------------------------------------------

  /// Reads the sharing of word (row, col).
  WordShares RowWord(const SharedRows& rows, size_t row, size_t col) const;

  /// Writes a sharing into word (row, col).
  void SetRowWord(SharedRows* rows, size_t row, size_t col,
                  const WordShares& v);

  /// Obliviously swaps rows i and j iff the shared bit `swap` is 1, using the
  /// XOR-swap circuit: one AND gate per payload bit.
  void MuxSwapRows(SharedRows* rows, size_t i, size_t j,
                   const WordShares& swap);

  /// Compare-exchange for oblivious sorting networks: orders rows i and j by
  /// the 32-bit key in `key_col` (ascending if `ascending`). Ties keep the
  /// original order. Cost: one comparison + one row mux-swap.
  void CompareExchangeRows(SharedRows* rows, size_t i, size_t j,
                           size_t key_col, bool ascending);

  /// Lexicographic compare-exchange on (major_col, minor_col). Used where a
  /// total deterministic order is required (sorting networks are not stable,
  /// so ties must be broken inside the comparator). Cost: two comparisons,
  /// one equality, two gate-level combines, one row mux-swap.
  void CompareExchangeRowsLex(SharedRows* rows, size_t i, size_t j,
                              size_t major_col, size_t minor_col,
                              bool ascending);

  /// Sums column `col` over all rows (used for oblivious COUNT over isView
  /// bits). Returns a sharing of the sum.
  WordShares SumColumn(const SharedRows& rows, size_t col);

  // ------------------------------------------------------------------
  // Joint noise generation (paper Alg. 2 lines 4-6 / Section 5.2)
  // ------------------------------------------------------------------

  /// Samples Lap(scale) with randomness contributed by both servers:
  /// z = z0 XOR z1, r = fixed_point(z) in (0,1),
  /// noise = scale * ln(r) * sign(msb(z)).
  /// Neither party alone can predict or bias the noise as long as the other
  /// is honest. Charges the cost of a fixed-point log circuit.
  double JointLaplace(double scale);

  /// Internal combined randomness (seeded from both parties). Exposed for
  /// oblivious operators that need in-protocol random choices (e.g. dummy
  /// payload generation during padding).
  Rng* internal_rng() { return &internal_rng_; }

 private:
  /// Re-shares a plaintext word with protocol-internal fresh randomness.
  WordShares Reshare(Word value);

  Party* s0_;
  Party* s1_;
  CostModel model_;
  CircuitStats stats_;
  Rng internal_rng_;
};

}  // namespace incshrink
