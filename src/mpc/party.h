#pragma once

#include <cstdint>

#include "src/common/rng.h"

namespace incshrink {

/// \brief One of the two non-colluding outsourcing servers (S0 / S1).
///
/// A party owns an independent randomness source — the randomness it
/// *contributes* to joint noise generation and in-MPC re-sharing (paper
/// Alg. 2 line 4 and Appendix A.2). A party never sees plaintext secrets;
/// everything it stores outside the simulated protocol is a uniformly random
/// XOR share.
class Party {
 public:
  Party(int id, uint64_t seed) : id_(id), rng_(seed) {}

  int id() const { return id_; }

  /// The randomness this server contributes to the protocol. In a real
  /// deployment each server samples locally and feeds the value in as a
  /// private input; here the simulated runtime pulls from this stream.
  Rng* rng() { return &rng_; }

  /// Uniform ring element contributed as protocol input (z_i in the paper).
  uint32_t ContributeRandomWord() { return rng_.Next32(); }

 private:
  int id_;
  Rng rng_;
};

}  // namespace incshrink
