#!/usr/bin/env bash
# Tier-1 verification, exactly as ROADMAP.md and CI run it:
# configure, build everything, run every registered test.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
cd build
ctest --output-on-failure -j"$(nproc)"
