#!/usr/bin/env bash
# Static half of the deterministic-seed audit (the runtime half lives in
# tests/determinism_test.cc): every random draw in this repository must come
# from the seedable incshrink::Rng so that identical seeds reproduce
# identical transcripts bit for bit. This script fails if any other entropy
# source appears in committed sources.
#
# Output format: every diagnostic line carries the `entropy-lint:` prefix so
# tools/lint/run_lints.sh can interleave it with the oblivious linter in one
# unified report.
set -u

cd "$(dirname "$0")/.."

say() { echo "entropy-lint: $*"; }

# Forbidden constructs and where they usually sneak in. `mt19937` and
# `uniform_*_distribution` are banned too: libstdc++ gives no cross-platform
# reproducibility guarantees for distributions, so everything must go
# through common/rng.h.
PATTERNS=(
  'std::random_device'
  'random_device'
  '\bsrand\s*\('
  '\bsrandom\s*\('
  '\brand\s*\(\s*\)'
  'mt19937'
  'minstd_rand'
  'default_random_engine'
  'uniform_int_distribution'
  'uniform_real_distribution'
  'normal_distribution'
  'poisson_distribution'
  'time\s*\(\s*(NULL|nullptr|0)\s*\)'
  'high_resolution_clock'
  'steady_clock::now.*seed'
  'getrandom'
  'getentropy'
  '/dev/urandom'
)

fail=0
for pattern in "${PATTERNS[@]}"; do
  hits=$(grep -rnE "$pattern" src tests bench examples 2>/dev/null)
  if [ -n "$hits" ]; then
    say "FORBIDDEN entropy source (pattern: $pattern):"
    echo "$hits"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo
  say "Use incshrink::Rng (src/common/rng.h) with an explicit seed instead."
  exit 1
fi

# Shuffle hygiene: std::random_shuffle (removed in C++17, URNG unspecified)
# is banned everywhere; std::shuffle is only meaningful when driven by the
# seedable Rng, so it is confined to common/rng — if a shuffle is ever
# needed, implement it there on top of the seeded stream, not inline.
SHUFFLE_PATTERNS=(
  'std::random_shuffle'
  '\brandom_shuffle\s*\('
  'std::shuffle'
)

for pattern in "${SHUFFLE_PATTERNS[@]}"; do
  hits=$(grep -rnE "$pattern" src tests bench examples 2>/dev/null \
         | grep -v 'src/common/rng\.\(h\|cc\)')
  if [ -n "$hits" ]; then
    say "FORBIDDEN shuffle outside common/rng (pattern: $pattern):"
    echo "$hits"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo
  say "Shuffles must go through the seedable helpers in src/common/rng.h."
  exit 1
fi

# Concurrency hygiene (parallel-execution-layer satellite): the machine's
# worker count and thread-local timing must never be able to steer a
# simulated result. `thread::hardware_concurrency()` and `std::this_thread`
# (sleep-based timing, yields, thread-id probes) are therefore confined to
# the ThreadPool (src/common/thread_pool.*), the only component allowed to
# ask how many cores exist — everything above it takes an explicit worker
# count or the INCSHRINK_THREADS override, and produces bit-identical
# results regardless (tests/parallel_equivalence_test.cc).
CONCURRENCY_PATTERNS=(
  'std::this_thread'
  'this_thread::'
  'hardware_concurrency'
)

for pattern in "${CONCURRENCY_PATTERNS[@]}"; do
  hits=$(grep -rnE "$pattern" src tests bench examples 2>/dev/null \
         | grep -v 'src/common/thread_pool\.\(h\|cc\)')
  if [ -n "$hits" ]; then
    say "FORBIDDEN concurrency construct outside ThreadPool (pattern: $pattern):"
    echo "$hits"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo
  say "Route worker-count decisions through incshrink::ThreadPool /"
  say "ResolveThreadCount (src/common/thread_pool.h) instead."
  exit 1
fi

# Transport hygiene (upload-transport satellite): the channel layer carries
# opaque byte frames and must stay entirely entropy-free — no Rng, no policy
# state, nothing that could perturb a deterministic run from inside the
# transport. Anything needing randomness (sharing, policy noise) belongs to
# the OwnerClient above it.
if [ -d src/net ]; then
  hits=$(grep -rnE '\bRng\b|\brng\b|rng\.|rng->|\bseed\b|Laplace|Uniform\(|Next32|Next64' src/net 2>/dev/null)
  if [ -n "$hits" ]; then
    say "FORBIDDEN randomness in the transport layer (src/net must be entropy-free):"
    echo "$hits"
    fail=1
  fi
fi

# Wall-clock hygiene (socket-transport satellite): the transport layer must
# also never *read a clock* — arrival timing must not be able to steer what
# any deployment computes. The single sanctioned exception is the integer
# millisecond timeout handed to poll(2)/epoll_wait(2), which bounds a
# blocking wait and feeds nothing back into behavior; every such line must
# carry a `net-timeout-ok` marker so the exception stays enumerable.
if [ -d src/net ]; then
  CLOCK_PATTERNS=(
    'std::chrono'
    '::now\s*\('
    '\btime\s*\(\s*(NULL|nullptr|0|&)'
    'clock_gettime'
    'gettimeofday'
    'sleep_for'
    'sleep_until'
    '\busleep\s*\('
    '\bnanosleep\s*\('
  )
  for pattern in "${CLOCK_PATTERNS[@]}"; do
    hits=$(grep -rnE "$pattern" src/net 2>/dev/null | grep -v 'net-timeout-ok')
    if [ -n "$hits" ]; then
      say "FORBIDDEN wall-clock access in the transport layer (pattern: $pattern):"
      echo "$hits"
      fail=1
    fi
  done
  if [ "$fail" -ne 0 ]; then
    echo
    say "src/net must stay clock-free; a poll/epoll_wait timeout bound is the"
    say "only exception and its line must be marked // net-timeout-ok."
  fi
fi

if [ "$fail" -ne 0 ]; then
  exit 1
fi

# Shard seed hygiene (sharded-secure-cache satellite): shard-local protocol
# RNG state — the per-shard Party seeds and everything derived from them —
# may only come from DeriveShardSeed, the public splitmix64 substream of the
# deployment seed. A Party or Rng constructed in the sharded cache from any
# other value would silently break the K>1 thread-count-invariance and
# shard-reconstruction guarantees, so every such constructor call must sit
# on a line that mentions the derived seed.
SHARDED_CACHE=src/storage/sharded_cache.cc
if [ -f "$SHARDED_CACHE" ]; then
  hits=$(grep -nE '(make_unique<Party>|\bParty\s*\(|\bRng\s*\()' "$SHARDED_CACHE" \
         | grep -v 'derived_seed')
  if [ -n "$hits" ]; then
    say "FORBIDDEN shard-local randomness not derived via DeriveShardSeed:"
    echo "$hits"
    echo
    say "Seed shard parties/Rngs from DeriveShardSeed(engine_seed, shard)"
    say "(src/storage/sharded_cache.h) only."
    exit 1
  fi
fi

# Batch-kernel hygiene (batched-oblivious-execution satellite): the batch
# scheduler (src/oblivious/sort.cc) must take randomness exclusively through
# the protocol's stream — DrawReshareMasks for pre-drawn pooled rounds, or
# the *Site kernels (which draw inline from the same stream) for serial
# rounds. A raw Rng construction or direct Next32/Next64 draw in the
# scheduler would desynchronize the batched path from the scalar resharing
# sequence and silently break the bit-for-bit equivalence contract
# (tests/batched_oblivious_test.cc is the runtime half of this check).
BATCH_SCHEDULER=src/oblivious/sort.cc
if [ -f "$BATCH_SCHEDULER" ]; then
  hits=$(grep -nE '\bRng\s*\(|Next32|Next64|internal_rng|ShareWord|Laplace' \
         "$BATCH_SCHEDULER")
  if [ -n "$hits" ]; then
    say "FORBIDDEN direct randomness in the batch scheduler:"
    echo "$hits"
    echo
    say "Batched kernels must draw only via Protocol2PC::DrawReshareMasks"
    say "or the inline *Site kernels (src/mpc/protocol.h)."
    exit 1
  fi
fi

# Shuffle-network hygiene (Waksman-shuffle satellite): the permutation that
# programs a Waksman network's control bits must come exclusively from the
# jointly seeded resharing stream (Protocol2PC::DrawReshareMasks, consumed
# by DrawPublicPermutation) — that is what makes the control bits *public*
# and the shuffle simulatable. A raw Rng construction, a direct Next32/
# Next64 draw, or any share-level peeking in src/oblivious/shuffle.cc would
# either desynchronize both parties' view of the permutation or leak
# payload bits into the routing program.
SHUFFLE_SCHEDULER=src/oblivious/shuffle.cc
if [ -f "$SHUFFLE_SCHEDULER" ]; then
  hits=$(grep -nE '\bRng\s*\(|Next32|Next64|internal_rng|ShareWord|Laplace' \
         "$SHUFFLE_SCHEDULER")
  if [ -n "$hits" ]; then
    say "FORBIDDEN direct randomness in the shuffle network:"
    echo "$hits"
    echo
    say "Shuffle control bits may only be programmed from permutations drawn"
    say "via Protocol2PC::DrawReshareMasks (DrawPublicPermutation in"
    say "src/oblivious/shuffle.h)."
    exit 1
  fi
fi
# Checkpoint hygiene (crash-recovery tentpole): restore NEVER draws. The
# ICKP codec overwrites RNG cursors, counters and thetas with serialized
# state; any randomness drawn during snapshot encode/decode would
# desynchronize the party streams on restart and break the bit-identical
# resume contract (tests/checkpoint_restore_test.cc is the runtime half of
# this check). FreshShare is included: re-sharing rows on restore would
# silently re-randomize the two servers' halves.
CHECKPOINT_CODEC=src/storage/checkpoint.cc
if [ -f "$CHECKPOINT_CODEC" ]; then
  hits=$(grep -nE '\bRng\s*\(|Next32|Next64|FreshShare|internal_rng|Laplace' \
         "$CHECKPOINT_CODEC")
  if [ -n "$hits" ]; then
    say "FORBIDDEN randomness in the checkpoint codec:"
    echo "$hits"
    echo
    say "Snapshot encode/restore must be a pure function of the serialized"
    say "bytes — RNG state is restored, never re-drawn (src/storage/"
    say "checkpoint.h documents the leakage contract)."
    exit 1
  fi
fi

say "OK: no hidden entropy sources found."
