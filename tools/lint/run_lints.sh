#!/usr/bin/env bash
# Unified static-analysis gate. Runs, in order:
#
#   1. entropy-lint    — tools/check_no_hidden_entropy.sh (pattern audit:
#                        hidden entropy, shuffles, concurrency, transport
#                        clock/randomness, shard-seed and batch-kernel rules)
#   2. oblivious-lint  — tools/lint/oblivious_lint.py (secret-taint analysis
#                        of every TU in src/: no branch, subscript, loop
#                        bound, or allocation size may depend on secret
#                        shares without passing a declassification point)
#   3. lint-selftest   — oblivious_lint.py --selftest over the checked-in
#                        must-flag / must-pass fixtures, so a regression in
#                        the linter itself cannot silently green the gate
#   4. clang-tidy      — optional (--clang-tidy), skipped with a notice when
#                        the binary is absent so CI stays the only hard user
#
# Exit code is the OR of all stages; each stage prefixes its own output
# (entropy-lint: / oblivious-lint: / clang-tidy:), so the combined log reads
# as one report.
set -u

cd "$(dirname "$0")/../.."

WITH_TIDY=0
ENGINE=auto
for arg in "$@"; do
  case "$arg" in
    --clang-tidy) WITH_TIDY=1 ;;
    --engine=*) ENGINE="${arg#--engine=}" ;;
    -h|--help)
      echo "usage: $0 [--clang-tidy] [--engine=auto|tokenizer|libclang]"
      exit 0
      ;;
    *)
      echo "run-lints: unknown argument: $arg" >&2
      exit 2
      ;;
  esac
done

fail=0

echo "run-lints: [1/4] entropy audit"
bash tools/check_no_hidden_entropy.sh || fail=1

echo "run-lints: [2/4] oblivious leakage lint"
python3 tools/lint/oblivious_lint.py \
  --src src \
  --manifest tools/lint/secret_api.toml \
  --compile-commands build/compile_commands.json \
  --engine "$ENGINE" || fail=1

echo "run-lints: [3/4] lint self-test fixtures"
python3 tools/lint/oblivious_lint.py \
  --selftest tests/lint_fixtures \
  --manifest tools/lint/secret_api.toml \
  --engine "$ENGINE" || fail=1

if [ "$WITH_TIDY" -eq 1 ]; then
  echo "run-lints: [4/4] clang-tidy"
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy: binary not found; skipping (install clang-tidy or run the CI lint job)"
  elif [ ! -f build/compile_commands.json ]; then
    echo "clang-tidy: build/compile_commands.json missing; configure with cmake first"
    fail=1
  else
    # Sources only; headers are pulled in via HeaderFilterRegex in .clang-tidy.
    mapfile -t TIDY_SOURCES < <(find src -name '*.cc' | sort)
    clang-tidy -p build --quiet --warnings-as-errors='*' \
      "${TIDY_SOURCES[@]}" || fail=1
  fi
else
  echo "run-lints: [4/4] clang-tidy skipped (pass --clang-tidy to enable)"
fi

if [ "$fail" -ne 0 ]; then
  echo "run-lints: FAIL"
  exit 1
fi
echo "run-lints: OK"
