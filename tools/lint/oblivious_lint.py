#!/usr/bin/env python3
"""Secret-taint oblivious-leakage linter for the IncShrink tree.

Statically flags code whose *observable* behavior — branch direction, loop
trip count, memory index, allocation size — depends on secret-shared data
without passing a sanctioned declassification point. This is the
compile-time half of the obliviousness argument; the runtime half is
tests/oblivious_invariants_test.cc, which can only witness the inputs it
happens to run.

Taint model (seeded from tools/lint/secret_api.toml):
  * values of secret types (WordShares, SharedRows, ...) and results of
    secret-producing functions (Recover*, KeyOutOfOrder, ...) are SECRET;
  * a single share of a (2,2)-XOR sharing is uniform noise, tracked as
    HALF0/HALF1; an expression mixing both halves reconstructs the secret
    and is promoted to SECRET;
  * declassifiers (Reveal, the DP release clamp) and public metadata
    accessors (.size()/.width()/...) launder taint to PUBLIC.

Sinks: if/while/switch conditions, for-loop conditions, ternary conditions,
array subscripts, and allocation/row-count sizes (resize/reserve/Reserve/
Truncate/SplitPrefix arguments, new[] extents).

Engines: `--engine libclang` tokenizes each TU with clang.cindex when the
bindings are importable (macro-faithful); the default deterministic
tokenizer/brace-tracking engine needs nothing beyond the Python stdlib, so
CI carries no new hard dependency. Both engines feed the same analysis.

Suppressions mirror the src/net `net-timeout-ok` idiom:
    // oblivious-ok: <reason>        (same line, or next code line when the
                                      comment stands alone)
    // oblivious-ok-begin: <reason>  ... // oblivious-ok-end   (region)
Every marker is counted and printed so suppression drift stays visible.

Exit codes: 0 clean, 1 unsuppressed findings (or self-test mismatch),
2 usage/manifest error.

Analysis is intra-procedural and token-based by design: taint propagates
through declarations, assignments and member chains, not through container
mutation or across call boundaries (the manifest's sources/tainted_params
entries are the cross-procedure escape hatches). Ideal-functionality scan
kernels whose aggregate circuit cost is charged up front are annotated with
oblivious-ok regions rather than modeled.
"""

import argparse
import json
import os
import re
import sys
import tomllib

# ----------------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------------

# Longest-match-first C++ punctuation. '==' must precede '=' etc.
_PUNCTS = [
    "<<=", ">>=", "->*", "...", "::", "->", "==", "!=", "<=", ">=", "&&",
    "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "++",
    "--", ".*", "(", ")", "[", "]", "{", "}", ";", ",", ".", "?", ":", "=",
    "<", ">", "!", "&", "|", "^", "+", "-", "*", "/", "%", "~",
]

_ID_START = re.compile(r"[A-Za-z_]")
_ID_CONT = re.compile(r"[A-Za-z0-9_]")


class Tok:
    __slots__ = ("kind", "val", "line", "col")

    def __init__(self, kind, val, line, col):
        self.kind = kind  # 'id' | 'num' | 'str' | 'chr' | 'punct'
        self.val = val
        self.line = line
        self.col = col

    def __repr__(self):  # pragma: no cover - debug aid
        return f"{self.kind}:{self.val}@{self.line}:{self.col}"


def tokenize(text):
    """Deterministic C++ tokenizer: skips whitespace, comments, preprocessor
    lines; understands string/char literals (incl. raw strings)."""
    toks = []
    i, n = 0, len(text)
    line, col = 1, 1

    def advance(k):
        nonlocal i, line, col
        for _ in range(k):
            if i < n and text[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    at_line_start = True
    while i < n:
        c = text[i]
        if c in " \t\r":
            advance(1)
            continue
        if c == "\n":
            advance(1)
            at_line_start = True
            continue
        if at_line_start and c == "#":
            # Preprocessor line (with continuations).
            while i < n:
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    advance(2)
                    continue
                if text[i] == "\n":
                    break
                advance(1)
            continue
        at_line_start = False
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                advance(1)
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            advance(2)
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                advance(1)
            advance(2 if i + 1 < n else n - i)
            continue
        if c == "R" and text[i : i + 2] == 'R"':
            # Raw string literal R"delim( ... )delim".
            j = text.find("(", i + 2)
            if j != -1:
                delim = text[i + 2 : j]
                close = ")" + delim + '"'
                k = text.find(close, j + 1)
                end = (k + len(close)) if k != -1 else n
                toks.append(Tok("str", "<rawstr>", line, col))
                advance(end - i)
                continue
        if c == '"':
            start_line, start_col = line, col
            advance(1)
            while i < n and text[i] != '"':
                advance(2 if text[i] == "\\" else 1)
            advance(1)
            toks.append(Tok("str", "<str>", start_line, start_col))
            continue
        if c == "'":
            start_line, start_col = line, col
            advance(1)
            while i < n and text[i] != "'":
                advance(2 if text[i] == "\\" else 1)
            advance(1)
            toks.append(Tok("chr", "<chr>", start_line, start_col))
            continue
        if _ID_START.match(c):
            j = i + 1
            while j < n and _ID_CONT.match(text[j]):
                j += 1
            toks.append(Tok("id", text[i:j], line, col))
            advance(j - i)
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (
                text[j].isalnum()
                or text[j] in "._'"
                or (text[j] in "+-" and text[j - 1] in "eEpP")
            ):
                j += 1
            toks.append(Tok("num", text[i:j], line, col))
            advance(j - i)
            continue
        for p in _PUNCTS:
            if text.startswith(p, i):
                toks.append(Tok("punct", p, line, col))
                advance(len(p))
                break
        else:
            advance(1)  # unknown byte: skip
    return toks


def tokens_via_libclang(path, index):
    """Tokenize `path` with clang.cindex, mapped onto the Tok stream the
    analysis consumes. Raises on any failure; callers fall back."""
    from clang import cindex  # noqa: F401 (import checked by caller)

    tu = index.parse(path, args=["-std=c++20", "-fsyntax-only"])
    toks = []
    kind_map = {"IDENTIFIER": "id", "KEYWORD": "id", "PUNCTUATION": "punct"}
    for t in tu.get_tokens(extent=tu.cursor.extent):
        k = t.kind.name
        if k == "COMMENT":
            continue
        if k == "LITERAL":
            s = t.spelling
            kind = "str" if s[:1] in "\"'RLuU8" and '"' in s else (
                "chr" if "'" in s else "num")
            toks.append(Tok(kind, s, t.location.line, t.location.column))
        else:
            toks.append(
                Tok(kind_map.get(k, "punct"), t.spelling, t.location.line,
                    t.location.column))
    return toks


# ----------------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------------

class Manifest:
    def __init__(self, d):
        try:
            self.secret_types = set(d["types"]["secret"])
            self.sources = set(d["sources"]["functions"])
            self.half0_fns = set(d["halves"]["share0_functions"])
            self.half1_fns = set(d["halves"]["share1_functions"])
            self.half0_fields = set(d["halves"]["share0_fields"])
            self.half1_fields = set(d["halves"]["share1_fields"])
            self.declassifiers = set(d["declassifiers"]["functions"])
            self.public_methods = set(d["declassifiers"]["public_methods"])
            self.tainted_params = {}
            for entry in d["tainted_params"]["entries"]:
                fn, _, param = entry.partition(".")
                self.tainted_params.setdefault(fn, set()).add(param)
            self.alloc_methods = set(d["sinks"]["alloc_methods"])
            self.marker = d["suppression"]["marker"]
        except KeyError as e:
            raise SystemExit(f"oblivious-lint: manifest missing section/key {e}")


# Taint lattice elements.
SECRET = "S"
HALF0 = "0"
HALF1 = "1"


def is_secret(flags):
    return SECRET in flags or (HALF0 in flags and HALF1 in flags)


# ----------------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------------

class Suppressions:
    """Line- and region-level `oblivious-ok` markers of one file."""

    def __init__(self, path, lines, marker):
        self.line_markers = {}  # effective code line -> (marker line, reason)
        self.regions = []  # (begin line, end line, reason)
        self.errors = []
        self.used_lines = set()
        self.used_regions = set()
        begin_re = re.compile(r"//\s*" + marker + r"-begin:\s*(.+)")
        end_re = re.compile(r"//\s*" + marker + r"-end\b")
        line_re = re.compile(r"//\s*" + marker + r":\s*(.+)")
        open_region = None
        pending = None  # standalone marker awaiting its code line
        for ln, raw in enumerate(lines, start=1):
            m = begin_re.search(raw)
            if m:
                if open_region is not None:
                    self.errors.append(
                        f"{path}:{ln}: nested {marker}-begin (previous at "
                        f"line {open_region[0]})")
                open_region = (ln, m.group(1).strip())
                continue
            if end_re.search(raw):
                if open_region is None:
                    self.errors.append(f"{path}:{ln}: {marker}-end without begin")
                else:
                    self.regions.append((open_region[0], ln, open_region[1]))
                    open_region = None
                continue
            m = line_re.search(raw)
            code = raw.split("//", 1)[0]
            if m:
                reason = m.group(1).strip()
                if code.strip():
                    self.line_markers[ln] = (ln, reason)
                else:
                    pending = (ln, reason)
                continue
            if pending is not None and code.strip():
                self.line_markers[ln] = pending
                pending = None
        if open_region is not None:
            self.errors.append(
                f"{path}:{open_region[0]}: unclosed {marker}-begin")

    def covers(self, line):
        if line in self.line_markers:
            self.used_lines.add(self.line_markers[line][0])
            return True
        for idx, (b, e, _r) in enumerate(self.regions):
            if b <= line <= e:
                self.used_regions.add(idx)
                return True
        return False

    @property
    def marker_count(self):
        return len(set(m for m, _ in self.line_markers.values())) + len(self.regions)

    def unused(self):
        out = [m for m, _ in set(self.line_markers.values())
               if m not in self.used_lines]
        out += [self.regions[i][0] for i in range(len(self.regions))
                if i not in self.used_regions]
        return sorted(set(out))


# ----------------------------------------------------------------------------
# Analysis
# ----------------------------------------------------------------------------

_CONTROL_KEYWORDS = {"if", "while", "switch", "for"}
_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}
_DECL_QUALS = {"const", "constexpr", "static", "inline", "mutable", "volatile"}
# Boundary tokens that terminate the backward scan for a ternary condition.
_TERNARY_STOPS = {";", ",", "{", "}", "(", "[", "?", ":", "return", "case"} | _ASSIGN_OPS


class Finding:
    __slots__ = ("path", "line", "col", "rule", "expr", "why", "suppressed")

    def __init__(self, path, line, col, rule, expr, why):
        self.path = path
        self.line = line
        self.col = col
        self.rule = rule
        self.expr = expr
        self.why = why
        self.suppressed = False


def _match_forward(toks, i, open_p, close_p):
    """Index just past the matching close for the open paren at toks[i]."""
    depth = 0
    n = len(toks)
    while i < n:
        v = toks[i].val
        if toks[i].kind == "punct":
            if v == open_p:
                depth += 1
            elif v == close_p:
                depth -= 1
                if depth == 0:
                    return i + 1
        i += 1
    return n


def _render(toks):
    return " ".join(t.val for t in toks[:14]) + (" ..." if len(toks) > 14 else "")


class FileAnalyzer:
    def __init__(self, path, toks, lines, manifest):
        self.path = path
        self.toks = toks
        self.manifest = manifest
        self.supp = Suppressions(path, lines, manifest.marker)
        self.findings = []
        # Scope stack of {ident: taint flag}. Scope 0 is file scope.
        self.scopes = [{}]
        self.pending_params = {}

    # -- taint helpers ------------------------------------------------------

    def lookup(self, name):
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def bind(self, name, flag, paren_depth):
        if flag is None:
            # Explicitly clearing (re-assignment from a public expr).
            target = self.pending_params if paren_depth > 0 else self.scopes[-1]
            target.pop(name, None)
            for scope in reversed(self.scopes):
                if name in scope:
                    scope[name] = None
                    return
            return
        if paren_depth > 0:
            self.pending_params[name] = flag
        else:
            self.scopes[-1][name] = flag

    # -- expression evaluation ---------------------------------------------

    def eval_expr(self, toks):
        """Returns (flags, evidence list) for a token slice."""
        m = self.manifest
        flags = set()
        why = []
        i, n = 0, len(toks)
        while i < n:
            t = toks[i]
            if t.kind != "id":
                i += 1
                continue
            # Collapse qualified names a::b::c to their last component.
            name = t.val
            j = i + 1
            while j + 1 < n and toks[j].val == "::" and toks[j + 1].kind == "id":
                name = toks[j + 1].val
                j += 2
            nxt = toks[j].val if j < n else None
            if nxt == "(":
                if name in m.declassifiers:
                    i = _match_forward(toks, j, "(", ")")
                    continue  # declassified: argument taint is laundered
                if name in m.sources:
                    flags.add(SECRET)
                    why.append(name + "()")
                    i = j
                    continue
                if name in m.half0_fns:
                    flags.add(HALF0)
                    why.append(name + "()")
                    i = j
                    continue
                if name in m.half1_fns:
                    flags.add(HALF1)
                    why.append(name + "()")
                    i = j
                    continue
                i = j  # unknown call: args evaluated as the scan continues
                continue
            # Variable use, possibly a postfix member/index chain.
            cur = self.lookup(name)
            cur_why = name if cur is not None else None
            k = j
            while k < n and toks[k].val in (".", "->"):
                if k + 1 >= n or toks[k + 1].kind != "id":
                    break
                member = toks[k + 1].val
                after = toks[k + 2].val if k + 2 < n else None
                if after == "(":
                    if member in m.public_methods or member in m.declassifiers:
                        cur, cur_why = None, None
                    elif member in m.sources:
                        cur, cur_why = SECRET, member + "()"
                    elif member in m.half0_fns:
                        cur, cur_why = HALF0, member + "()"
                    elif member in m.half1_fns:
                        cur, cur_why = HALF1, member + "()"
                    # unknown member call on a tainted object: stay tainted
                    k = _match_forward(toks, k + 2, "(", ")")
                else:
                    if member in m.half0_fields:
                        cur, cur_why = HALF0, name + "." + member
                    elif member in m.half1_fields:
                        cur, cur_why = HALF1, name + "." + member
                    k += 2
            # Postfix subscripts keep the chain's taint (index handled by the
            # global sink scan).
            while k < n and toks[k].val == "[":
                k = _match_forward(toks, k, "[", "]")
            if cur is not None:
                flags.add(cur)
                if cur_why:
                    why.append(cur_why)
            i = max(k, j)
        return flags, why

    def check_sink(self, toks, line, col, rule):
        flags, why = self.eval_expr(toks)
        if is_secret(flags):
            self.findings.append(
                Finding(self.path, line, col, rule, _render(toks),
                        ",".join(sorted(set(why)))))

    # -- declaration / assignment tracking ---------------------------------

    def try_secret_decl(self, i, paren_depth):
        """`SecretType [cv/ref/ptr]* ident` declares a tainted identifier."""
        toks = self.toks
        n = len(toks)
        j = i + 1
        while j < n and (toks[j].val in ("*", "&", "&&") or
                         (toks[j].kind == "id" and toks[j].val in _DECL_QUALS)):
            j += 1
        if j < n and toks[j].kind == "id":
            after = toks[j + 1].val if j + 1 < n else None
            if after in (";", "=", "(", "{", ",", ")", "[", ":"):
                self.bind(toks[j].val, SECRET, paren_depth)

    def handle_assignment(self, i, paren_depth):
        """`target op= expr`: recompute (or merge, for compound ops) the
        target's taint from the right-hand side."""
        toks = self.toks
        op = toks[i].val
        # Identify the target identifier (walk back over a trailing subscript
        # and a member chain to the base identifier).
        k = i - 1
        if k >= 0 and toks[k].val == "]":
            depth = 0
            while k >= 0:
                if toks[k].val == "]":
                    depth += 1
                elif toks[k].val == "[":
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            k -= 1
        if k < 0 or toks[k].kind != "id":
            return
        base = k
        while base - 1 >= 0 and toks[base - 1].val in (".", "->"):
            if base - 2 >= 0 and toks[base - 2].kind == "id":
                base -= 2
            elif base - 2 >= 0 and toks[base - 2].val == ")":
                return  # assignment through a call result: not tracked
            else:
                break
        target = toks[base].val
        # Extract RHS up to ';' or a top-level ','.
        j = i + 1
        depth = 0
        rhs = []
        n = len(toks)
        while j < n:
            v = toks[j].val
            if toks[j].kind == "punct":
                if v in ("(", "[", "{"):
                    depth += 1
                elif v in (")", "]", "}"):
                    if depth == 0:
                        break
                    depth -= 1
                elif v == ";" and depth == 0:
                    break
                elif v == "," and depth == 0:
                    break
            rhs.append(toks[j])
            j += 1
        flags, _why = self.eval_expr(rhs)
        new = SECRET if is_secret(flags) else (
            HALF0 if HALF0 in flags else (HALF1 if HALF1 in flags else None))
        if op != "=":  # compound: merge with existing taint
            old = self.lookup(target)
            if old == SECRET or new == SECRET or {old, new} == {HALF0, HALF1}:
                new = SECRET
            else:
                new = new or old
        if toks[base] is not toks[k] and new is None:
            return  # member/element cleared: keep the container's taint
        self.bind(target, new, paren_depth)

    # -- main walk ----------------------------------------------------------

    def run(self):
        toks = self.toks
        n = len(toks)
        m = self.manifest
        paren_depth = 0
        # Name of the function whose parameter list we're inside (for
        # tainted_params), captured at the '(' that follows an identifier.
        fn_name_stack = []
        i = 0
        while i < n:
            t = toks[i]
            v = t.val
            if t.kind == "punct":
                if v == "(":
                    fn = None
                    if i > 0 and toks[i - 1].kind == "id":
                        fn = toks[i - 1].val
                    fn_name_stack.append(fn)
                    if fn in m.tainted_params:
                        # Taint the listed parameters for the upcoming body.
                        for p in m.tainted_params[fn]:
                            self.pending_params[p] = SECRET
                    paren_depth += 1
                elif v == ")":
                    paren_depth = max(0, paren_depth - 1)
                    if fn_name_stack:
                        fn_name_stack.pop()
                elif v == "{":
                    scope = dict(self.pending_params)
                    self.pending_params = {}
                    self.scopes.append(scope)
                elif v == "}":
                    if len(self.scopes) > 1:
                        self.scopes.pop()
                elif v == ";" and paren_depth == 0:
                    self.pending_params = {}
                elif v == "?":
                    self.check_ternary(i)
                elif v == "[":
                    prev = toks[i - 1] if i > 0 else None
                    nxt = toks[i + 1] if i + 1 < n else None
                    if (prev is not None and
                            (prev.kind == "id" or prev.val in (")", "]")) and
                            not (nxt is not None and nxt.val == "[")):
                        end = _match_forward(toks, i, "[", "]")
                        self.check_sink(toks[i + 1 : end - 1], t.line, t.col,
                                        "secret-index")
                elif v in _ASSIGN_OPS:
                    self.handle_assignment(i, paren_depth)
                i += 1
                continue
            if t.kind == "id":
                if v in _CONTROL_KEYWORDS:
                    i = self.check_control(i)
                    continue
                if v in m.secret_types:
                    self.try_secret_decl(i, paren_depth)
                    i += 1
                    continue
                if v == "new":
                    j = i + 1
                    while j < n and not (toks[j].kind == "punct" and
                                         toks[j].val in ("[", ";", "(", ")", ",")):
                        j += 1
                    if j < n and toks[j].val == "[":
                        end = _match_forward(toks, j, "[", "]")
                        self.check_sink(toks[j + 1 : end - 1], t.line, t.col,
                                        "secret-alloc-size")
                        i = end
                        continue
                if (v in m.alloc_methods and i > 0 and
                        toks[i - 1].val in (".", "->") and
                        i + 1 < n and toks[i + 1].val == "("):
                    end = _match_forward(toks, i + 1, "(", ")")
                    self.check_sink(toks[i + 2 : end - 1], t.line, t.col,
                                    "secret-alloc-size")
            i += 1
        return self.findings

    def check_control(self, i):
        """if/while/switch/for at toks[i]; returns resume index."""
        toks = self.toks
        n = len(toks)
        kw = toks[i].val
        j = i + 1
        if j < n and toks[j].kind == "id" and toks[j].val == "constexpr":
            return i + 1  # if constexpr: compile-time, cannot be secret
        if j >= n or toks[j].val != "(":
            return i + 1
        end = _match_forward(toks, j, "(", ")")
        inner = toks[j + 1 : end - 1]
        if kw == "for":
            # Split on top-level ';'. Range-for has none: skip (iterating a
            # shared table reveals only its public row count).
            depth = 0
            clauses = [[]]
            for t in inner:
                if t.kind == "punct":
                    if t.val in ("(", "[", "{"):
                        depth += 1
                    elif t.val in (")", "]", "}"):
                        depth -= 1
                    elif t.val == ";" and depth == 0:
                        clauses.append([])
                        continue
                clauses[-1].append(t)
            if len(clauses) >= 2:
                # Track taint of the init clause's declarations first.
                self.scan_clause_assignments(clauses[0])
                self.check_sink(clauses[1], toks[i].line, toks[i].col,
                                "secret-loop-bound")
            return j + 1  # continue the walk inside the parens
        self.check_sink(inner, toks[i].line, toks[i].col, "secret-branch")
        return j + 1  # walk inside (nested ternaries/subscripts/assignments)

    def scan_clause_assignments(self, clause):
        """Propagate taint through `type ident = expr` in a for-init."""
        for k, t in enumerate(clause):
            if t.kind == "punct" and t.val == "=" and k > 0 and \
                    clause[k - 1].kind == "id":
                flags, _ = self.eval_expr(clause[k + 1 :])
                new = SECRET if is_secret(flags) else (
                    HALF0 if HALF0 in flags else
                    (HALF1 if HALF1 in flags else None))
                self.scopes[-1][clause[k - 1].val] = new

    def check_ternary(self, q):
        """Backward scan for the condition of the ternary at toks[q]."""
        toks = self.toks
        start = q - 1
        depth = 0
        while start >= 0:
            t = toks[start]
            if t.kind == "punct":
                if t.val in (")", "]", "}"):
                    depth += 1
                elif t.val in ("(", "[", "{"):
                    if depth == 0:
                        break
                    depth -= 1
                elif depth == 0 and t.val in _TERNARY_STOPS:
                    break
            elif t.kind == "id" and depth == 0 and t.val in ("return", "case"):
                break
            start -= 1
        cond = toks[start + 1 : q]
        if cond:
            self.check_sink(cond, toks[q].line, toks[q].col, "secret-branch")


# ----------------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------------

def repo_root():
    return os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))


def discover_files(src_root, compile_commands):
    files = set()
    if compile_commands and os.path.isfile(compile_commands):
        with open(compile_commands, "rb") as f:
            for entry in json.load(f):
                p = os.path.normpath(
                    os.path.join(entry.get("directory", ""), entry["file"]))
                if os.path.abspath(p).startswith(os.path.abspath(src_root) + os.sep):
                    files.add(os.path.abspath(p))
    for dirpath, _dirs, names in os.walk(src_root):
        for name in names:
            if name.endswith((".cc", ".h", ".cpp", ".hpp")):
                files.add(os.path.abspath(os.path.join(dirpath, name)))
    return sorted(files)


def make_token_source(engine):
    """Returns (tokenizer fn path->toks, engine name actually in use)."""
    if engine in ("auto", "libclang"):
        try:
            from clang import cindex
            index = cindex.Index.create()

            def via_clang(path, text):
                del text
                return tokens_via_libclang(path, index)

            return via_clang, "libclang"
        except Exception as e:  # ImportError, LibclangError, ...
            if engine == "libclang":
                raise SystemExit(
                    f"oblivious-lint: --engine libclang requested but "
                    f"unavailable: {e}")

    def via_tokenizer(path, text):
        del path
        return tokenize(text)

    return via_tokenizer, "tokenizer"


def analyze_file(path, manifest, token_source, rel_to):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    lines = text.splitlines()
    toks = token_source(path, text)
    rel = os.path.relpath(path, rel_to)
    analyzer = FileAnalyzer(rel, toks, lines, manifest)
    findings = analyzer.run()
    for fi in findings:
        fi.suppressed = analyzer.supp.covers(fi.line)
    return findings, analyzer.supp


def run_lint(paths, manifest, token_source, rel_to, verbose_suppressed=False):
    all_findings = []
    marker_total = line_markers = region_markers = 0
    suppressed_total = 0
    unused_markers = []
    errors = []
    for path in paths:
        findings, supp = analyze_file(path, manifest, token_source, rel_to)
        errors.extend(supp.errors)
        marker_total += supp.marker_count
        line_markers += len(set(m for m, _ in supp.line_markers.values()))
        region_markers += len(supp.regions)
        for fi in findings:
            if fi.suppressed:
                suppressed_total += 1
            all_findings.append(fi)
        rel = os.path.relpath(path, rel_to)
        unused_markers.extend(f"{rel}:{ln}" for ln in supp.unused())
    all_findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    unsuppressed = [f for f in all_findings if not f.suppressed]
    for fi in unsuppressed:
        print(f"oblivious-lint: FINDING {fi.rule} {fi.path}:{fi.line}:{fi.col} "
              f"`{fi.expr}` tainted-by[{fi.why}]")
    if verbose_suppressed:
        for fi in all_findings:
            if fi.suppressed:
                print(f"oblivious-lint: suppressed {fi.rule} "
                      f"{fi.path}:{fi.line}:{fi.col}")
    for e in errors:
        print(f"oblivious-lint: MARKER-ERROR {e}")
    print(f"oblivious-lint: suppressions: {marker_total} markers "
          f"({line_markers} line, {region_markers} region), "
          f"{suppressed_total} findings suppressed, "
          f"{len(unused_markers)} unused markers")
    for u in unused_markers:
        print(f"oblivious-lint: note: unused marker at {u}")
    ok = not unsuppressed and not errors
    print(f"oblivious-lint: {len(unsuppressed)} unsuppressed findings -> "
          f"{'OK' if ok else 'FAIL'}")
    return 0 if ok else 1


_EXPECT_FINDINGS = re.compile(r"//\s*expect-findings:\s*(\d+)")
_EXPECT_SUPPRESSED = re.compile(r"//\s*expect-suppressed:\s*(\d+)")


def run_selftest(fixtures_dir, manifest, token_source):
    """Runs the analysis over each fixture and checks the exact finding and
    suppression counts its header comments declare."""
    paths = sorted(
        os.path.join(fixtures_dir, n) for n in os.listdir(fixtures_dir)
        if n.endswith((".cc", ".h")))
    if not paths:
        print(f"oblivious-lint: selftest: no fixtures in {fixtures_dir}")
        return 2
    failures = 0
    for path in paths:
        with open(path, "r", encoding="utf-8") as f:
            head = f.read()
        m = _EXPECT_FINDINGS.search(head)
        if not m:
            print(f"oblivious-lint: selftest: {path} lacks `// expect-findings: N`")
            failures += 1
            continue
        want = int(m.group(1))
        ms = _EXPECT_SUPPRESSED.search(head)
        want_suppressed = int(ms.group(1)) if ms else 0
        findings, supp = analyze_file(path, manifest, token_source,
                                      os.path.dirname(fixtures_dir) or ".")
        got = sum(1 for f_ in findings if not f_.suppressed)
        got_suppressed = sum(1 for f_ in findings if f_.suppressed)
        status = "ok"
        if got != want or got_suppressed != want_suppressed or supp.errors:
            status = "MISMATCH"
            failures += 1
        print(f"oblivious-lint: selftest {os.path.basename(path)}: "
              f"findings {got}/{want} suppressed {got_suppressed}/"
              f"{want_suppressed} markers {supp.marker_count} -> {status}")
        if status == "MISMATCH":
            for fi in findings:
                tag = "suppressed " if fi.suppressed else ""
                print(f"  {tag}{fi.rule} {fi.path}:{fi.line}:{fi.col} "
                      f"`{fi.expr}`")
            for e in supp.errors:
                print(f"  marker-error {e}")
    print(f"oblivious-lint: selftest: {len(paths) - failures}/{len(paths)} "
          f"fixtures -> {'OK' if failures == 0 else 'FAIL'}")
    return 0 if failures == 0 else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*", help="explicit files (default: --src tree)")
    ap.add_argument("--src", default=None, help="source root (default: <repo>/src)")
    ap.add_argument("--manifest", default=None,
                    help="secret-API manifest (default: tools/lint/secret_api.toml)")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json for TU discovery/libclang")
    ap.add_argument("--engine", choices=["auto", "tokenizer", "libclang"],
                    default="auto")
    ap.add_argument("--selftest", metavar="DIR",
                    help="run fixture self-test over DIR and exit")
    ap.add_argument("--show-suppressed", action="store_true",
                    help="also list suppressed findings")
    args = ap.parse_args()

    root = repo_root()
    manifest_path = args.manifest or os.path.join(root, "tools/lint/secret_api.toml")
    try:
        with open(manifest_path, "rb") as f:
            manifest = Manifest(tomllib.load(f))
    except FileNotFoundError:
        raise SystemExit(f"oblivious-lint: manifest not found: {manifest_path}")
    except tomllib.TOMLDecodeError as e:
        raise SystemExit(f"oblivious-lint: bad manifest {manifest_path}: {e}")

    token_source, engine = make_token_source(args.engine)

    if args.selftest:
        sys.exit(run_selftest(args.selftest, manifest, token_source))

    if args.files:
        paths = [os.path.abspath(p) for p in args.files]
    else:
        src_root = args.src or os.path.join(root, "src")
        cc = args.compile_commands
        if cc is None:
            default_cc = os.path.join(root, "build", "compile_commands.json")
            cc = default_cc if os.path.isfile(default_cc) else None
        paths = discover_files(src_root, cc)
    if not paths:
        raise SystemExit("oblivious-lint: no input files")
    print(f"oblivious-lint: scanning {len(paths)} files "
          f"(engine={engine}, manifest={os.path.relpath(manifest_path, root)})")
    sys.exit(run_lint(paths, manifest, token_source, root,
                      verbose_suppressed=args.show_suppressed))


if __name__ == "__main__":
    main()
